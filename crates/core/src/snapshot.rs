//! Snapshot types: what a scheduling policy sees and what it decides.
//!
//! Lyra's job scheduler "periodically collects job status and resource usage
//! of the training cluster" and then "computes the resource allocation and
//! placement decisions for each job" (§3). This module defines that
//! interface: a [`Snapshot`] of servers, pending jobs and running jobs, and
//! the [`Action`]s a policy returns. The simulator (and, in a real
//! deployment, the resource-manager shim) applies the actions.

use crate::gpu::GpuType;
use crate::job::{JobId, JobSpec};
use serde::{Deserialize, Serialize};

/// Unique identifier of a physical server.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ServerId(pub u32);

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server-{}", self.0)
    }
}

/// Which management domain a server currently belongs to, from the training
/// scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// A dedicated training server (V100 in the paper's environment).
    Training,
    /// An inference server currently loaned to the training cluster.
    OnLoan,
}

/// Sub-group of an on-loan server used by §5.3's placement rule: elastic
/// jobs' base and flexible demands go to *separate* groups of inference
/// servers so reclaiming can release the flexible group first without any
/// preemption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ServerGroup {
    /// No group assigned yet (empty server) or a training server.
    #[default]
    Unassigned,
    /// Hosts base-demand workers (preempting these kills jobs).
    Base,
    /// Hosts flexible workers only (vacating these merely scales jobs in).
    Flexible,
}

/// A server as seen by the scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerView {
    /// Server identity.
    pub id: ServerId,
    /// Current pool.
    pub pool: PoolKind,
    /// Installed GPU model.
    pub gpu_type: GpuType,
    /// Total GPUs on the server (8 in the paper's clusters).
    pub total_gpus: u32,
    /// GPUs not allocated to any worker.
    pub free_gpus: u32,
    /// Base/flexible grouping for on-loan servers.
    pub group: ServerGroup,
    /// Generation speed multiplier on this server's capability (1.0 in the
    /// paper's homogeneous-generation clusters; see
    /// [`crate::gpu::SpeedFactors`]).
    pub speed_factor: f64,
}

impl ServerView {
    /// Convenience constructor for a fully idle server.
    pub fn idle(id: u32, pool: PoolKind, gpu_type: GpuType, total_gpus: u32) -> Self {
        ServerView {
            id: ServerId(id),
            pool,
            gpu_type,
            total_gpus,
            free_gpus: total_gpus,
            group: ServerGroup::Unassigned,
            speed_factor: 1.0,
        }
    }

    /// V100-equivalent throughput of one GPU on this server: the static
    /// capability scaled by the generation speed factor.
    pub fn effective_capability(&self) -> f64 {
        self.gpu_type.capability() * self.speed_factor
    }

    /// GPUs currently in use.
    pub fn used_gpus(&self) -> u32 {
        self.total_gpus - self.free_gpus
    }

    /// Whether no worker occupies this server.
    pub fn is_empty(&self) -> bool {
        self.free_gpus == self.total_gpus
    }
}

/// A queued job waiting for resources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingJobView {
    /// The job's submitted specification.
    pub spec: JobSpec,
    /// The profiler's running-time estimate in seconds at base demand
    /// (§5.2 relies on predicted running times; §7.4 Table 9 injects error
    /// here).
    pub est_running_time_s: f64,
    /// Remaining work in reference worker-seconds (less than
    /// `spec.work()` after a checkpointed preemption).
    pub work_left: f64,
    /// How many times this job has been preempted so far.
    pub preemptions: u32,
}

impl PendingJobView {
    /// Builds a view for a freshly submitted job with a perfect estimate.
    pub fn fresh(spec: JobSpec) -> Self {
        let est = spec.base_running_time();
        let work = spec.work();
        PendingJobView {
            spec,
            est_running_time_s: est,
            work_left: work,
            preemptions: 0,
        }
    }
}

/// A running job, as relevant to elastic resizing decisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningJobView {
    /// The job's specification.
    pub spec: JobSpec,
    /// Workers currently allocated.
    pub workers: u32,
    /// Remaining work in reference worker-seconds.
    pub work_left: f64,
    /// Workers per server, `(server, worker count)`, base and flexible
    /// combined.
    pub placement: Vec<(ServerId, u32)>,
    /// How many of `workers` are flexible (beyond base demand).
    pub flexible_workers: u32,
    /// Where the flexible workers sit, `(server, worker count)`; a subset
    /// of `placement`. Policies use this to build scale-in removals.
    pub flex_placement: Vec<(ServerId, u32)>,
}

impl RunningJobView {
    /// Workers that belong to the base demand.
    pub fn base_workers(&self) -> u32 {
        self.workers - self.flexible_workers
    }
}

/// Everything a policy sees at one scheduling epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Snapshot {
    /// Simulation/wall time in seconds.
    pub time_s: f64,
    /// All servers currently under the training scheduler's whitelist.
    pub servers: Vec<ServerView>,
    /// Jobs waiting in the queue, in submission order.
    pub pending: Vec<PendingJobView>,
    /// Jobs currently running.
    pub running: Vec<RunningJobView>,
}

impl Snapshot {
    /// Total free GPUs across all servers.
    pub fn free_gpus(&self) -> u32 {
        self.servers.iter().map(|s| s.free_gpus).sum()
    }

    /// Total free GPUs in V100-equivalents, normalising on-loan GPUs
    /// (§5.2) and scaling by per-generation speed factors.
    pub fn normalized_free_gpus(&self) -> f64 {
        self.servers
            .iter()
            .map(|s| f64::from(s.free_gpus) * s.effective_capability())
            .sum()
    }

    /// Free GPUs restricted to one pool.
    pub fn free_gpus_in(&self, pool: PoolKind) -> u32 {
        self.servers
            .iter()
            .filter(|s| s.pool == pool)
            .map(|s| s.free_gpus)
            .sum()
    }

    /// Checks the snapshot's internal consistency, returning a
    /// description of the first violation found:
    ///
    /// * per-server free GPUs never exceed the installed total;
    /// * no duplicate server ids;
    /// * running jobs' placements reference servers in the snapshot,
    ///   their worker counts sum to `workers`, and the flexible subset
    ///   never exceeds what the placement holds per server.
    ///
    /// The simulator asserts this on every snapshot it builds in debug
    /// builds; policies may call it on untrusted input.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        for s in &self.servers {
            if s.free_gpus > s.total_gpus {
                return Err(format!(
                    "{}: {} free GPUs of {} installed",
                    s.id, s.free_gpus, s.total_gpus
                ));
            }
            if !seen.insert(s.id) {
                return Err(format!("duplicate {}", s.id));
            }
        }
        for r in &self.running {
            let placed: u32 = r.placement.iter().map(|(_, w)| w).sum();
            if placed != r.workers {
                return Err(format!(
                    "{}: placement holds {placed} workers, job reports {}",
                    r.spec.id, r.workers
                ));
            }
            if r.flexible_workers > r.workers {
                return Err(format!(
                    "{}: {} flexible of {} workers",
                    r.spec.id, r.flexible_workers, r.workers
                ));
            }
            for (sid, w) in &r.placement {
                if !seen.contains(sid) {
                    return Err(format!("{}: placed on unknown {sid}", r.spec.id));
                }
                let flex = r
                    .flex_placement
                    .iter()
                    .find(|(s, _)| s == sid)
                    .map_or(0, |(_, f)| *f);
                if flex > *w {
                    return Err(format!(
                        "{}: {flex} flexible workers on {sid} but only {w} placed",
                        r.spec.id
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A worker-to-server assignment: `(server, number of workers placed
/// there)`.
pub type Assignment = Vec<(ServerId, u32)>;

/// A decision returned by a scheduling policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Start a pending job with `workers` workers placed as given.
    Launch {
        /// Which job to start.
        job: JobId,
        /// Initial worker count (base demand + any flexible share).
        workers: u32,
        /// Placement of those workers.
        placement: Assignment,
    },
    /// Grow a running elastic job by `extra` workers.
    ScaleOut {
        /// Which job to grow.
        job: JobId,
        /// Additional workers.
        extra: u32,
        /// Placement of the additional workers.
        placement: Assignment,
    },
    /// Shrink a running elastic job, removing the listed workers.
    ScaleIn {
        /// Which job to shrink.
        job: JobId,
        /// Workers to remove per server.
        removal: Assignment,
    },
}

impl Action {
    /// The job this action applies to.
    pub fn job(&self) -> JobId {
        match self {
            Action::Launch { job, .. }
            | Action::ScaleOut { job, .. }
            | Action::ScaleIn { job, .. } => *job,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> Snapshot {
        Snapshot {
            time_s: 0.0,
            servers: vec![
                ServerView {
                    free_gpus: 3,
                    ..ServerView::idle(0, PoolKind::Training, GpuType::V100, 8)
                },
                ServerView::idle(1, PoolKind::OnLoan, GpuType::T4, 8),
            ],
            pending: vec![],
            running: vec![],
        }
    }

    #[test]
    fn free_gpu_accounting() {
        let s = snap();
        assert_eq!(s.free_gpus(), 11);
        assert_eq!(s.free_gpus_in(PoolKind::Training), 3);
        assert_eq!(s.free_gpus_in(PoolKind::OnLoan), 8);
        // 3 + 8/3 V100-equivalents.
        assert!((s.normalized_free_gpus() - (3.0 + 8.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn server_view_helpers() {
        let s = &snap().servers[0];
        assert_eq!(s.used_gpus(), 5);
        assert!(!s.is_empty());
        assert!(snap().servers[1].is_empty());
    }

    #[test]
    fn pending_view_fresh_uses_base_running_time() {
        let spec = JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0);
        let v = PendingJobView::fresh(spec.clone());
        assert!((v.est_running_time_s - 60.0).abs() < 1e-9);
        assert!((v.work_left - spec.work()).abs() < 1e-9);
    }

    #[test]
    fn running_view_base_workers() {
        let v = RunningJobView {
            spec: JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0),
            workers: 5,
            work_left: 10.0,
            placement: vec![(ServerId(0), 5)],
            flexible_workers: 3,
            flex_placement: vec![(ServerId(0), 3)],
        };
        assert_eq!(v.base_workers(), 2);
    }

    #[test]
    fn validate_accepts_consistent_snapshots() {
        let mut s = snap();
        assert_eq!(s.validate(), Ok(()));
        s.running.push(RunningJobView {
            spec: JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0),
            workers: 5,
            work_left: 10.0,
            placement: vec![(ServerId(0), 3), (ServerId(1), 2)],
            flexible_workers: 3,
            flex_placement: vec![(ServerId(0), 3)],
        });
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_inconsistencies() {
        // Free exceeding total.
        let mut s = snap();
        s.servers[0].free_gpus = 99;
        assert!(s.validate().is_err());

        // Duplicate server id.
        let mut s = snap();
        let dup = s.servers[0].clone();
        s.servers.push(dup);
        assert!(s.validate().is_err());

        let running = |placement: Vec<(ServerId, u32)>, workers, flex, flex_placement| {
            RunningJobView {
                spec: JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0),
                workers,
                work_left: 10.0,
                placement,
                flexible_workers: flex,
                flex_placement,
            }
        };

        // Placement sum disagrees with the worker count.
        let mut s = snap();
        s.running
            .push(running(vec![(ServerId(0), 2)], 5, 0, vec![]));
        assert!(s.validate().is_err());

        // More flexible workers than workers.
        let mut s = snap();
        s.running
            .push(running(vec![(ServerId(0), 2)], 2, 3, vec![]));
        assert!(s.validate().is_err());

        // Placed on a server the snapshot does not contain.
        let mut s = snap();
        s.running
            .push(running(vec![(ServerId(42), 2)], 2, 0, vec![]));
        assert!(s.validate().is_err());

        // Flexible subset exceeds the placement on a server.
        let mut s = snap();
        s.running.push(running(
            vec![(ServerId(0), 2)],
            2,
            2,
            vec![(ServerId(0), 3)],
        ));
        assert!(s.validate().is_err());
    }

    #[test]
    fn action_job_accessor() {
        let a = Action::Launch {
            job: JobId(7),
            workers: 2,
            placement: vec![(ServerId(0), 2)],
        };
        assert_eq!(a.job(), JobId(7));
        let b = Action::ScaleIn {
            job: JobId(9),
            removal: vec![],
        };
        assert_eq!(b.job(), JobId(9));
    }
}
