//! Worker placement (§5.3).
//!
//! Given the allocation results (how many workers each job gets), placement
//! decides which server hosts each worker. The goals and rules from the
//! paper:
//!
//! * **Bin packing with best-fit decreasing (BFD):** jobs are sorted by
//!   per-worker GPU demand in decreasing order; each worker goes to the
//!   non-empty server that best fits its demand, falling back to a fresh
//!   server only when no partially-used one has room. This fights
//!   fragmentation, the main obstacle Figure 2's queuing analysis found.
//! * **Pool preference:** inelastic jobs prefer dedicated training servers;
//!   elastic (and fungible) jobs prefer on-loan inference servers, which
//!   maximises the chance that reclaiming can be satisfied by scaling jobs
//!   in rather than preempting them.
//! * **Base/flexible split:** an elastic job's base and flexible workers go
//!   to *separate groups* of on-loan servers, so the orchestrator can
//!   release the flexible group first with zero preemptions (§4). Table 6
//!   quantifies what happens without this rule — the
//!   [`PlacementConfig::special_elastic_treatment`] switch reproduces it.
//! * **Heterogeneous jobs** (§6): scheduled last by the policy layer; their
//!   base demand prefers training servers and flexible demand prefers
//!   on-loan servers, and they alone may span both GPU types.

use crate::job::JobId;
use crate::snapshot::{Assignment, PoolKind, ServerGroup, ServerId, ServerView};
use serde::{Deserialize, Serialize};

/// What kind of workers a placement request carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerRole {
    /// Fixed-demand job workers (gang: place all or nothing).
    Inelastic,
    /// The base (minimum) demand of an elastic job (gang).
    ElasticBase,
    /// Flexible workers of an elastic job (best effort: place what fits).
    ElasticFlexible,
}

/// One job's placement request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementRequest {
    /// Job identity.
    pub job: JobId,
    /// Workers to place.
    pub workers: u32,
    /// GPUs per worker.
    pub gpus_per_worker: u32,
    /// Role of these workers.
    pub role: WorkerRole,
    /// Whether the job may run on on-loan (inference-GPU) servers.
    pub fungible: bool,
    /// Whether the job may span both GPU types in one run.
    pub hetero: bool,
}

/// Placement policy switches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementConfig {
    /// Apply §5.3's special treatment of elastic jobs: prefer on-loan
    /// servers and split base/flexible onto separate groups. Disabling
    /// reproduces Table 6 (naive BFD for everyone).
    pub special_elastic_treatment: bool,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            special_elastic_treatment: true,
        }
    }
}

/// Result of placing a batch of requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PlacementOutcome {
    /// Successful placements: `(job, role, worker→server assignment)`.
    pub placed: Vec<(JobId, WorkerRole, Assignment)>,
    /// Gang requests that could not be fully placed (no server change).
    pub failed: Vec<JobId>,
}

impl PlacementOutcome {
    /// Total workers placed for `job` across all its entries.
    pub fn workers_placed(&self, job: JobId) -> u32 {
        self.placed
            .iter()
            .filter(|(j, _, _)| *j == job)
            .map(|(_, _, a)| a.iter().map(|(_, w)| w).sum::<u32>())
            .sum()
    }
}

/// Reusable buffers for the placement hot path.
///
/// Gang placement needs an undo log (to stay atomic on failure) and
/// auditing needs a candidate-fit list; both are per-epoch allocations
/// unless the caller carries this scratch across calls. Holds no state
/// between calls — each call fully reinitialises what it uses.
#[derive(Debug, Clone, Default)]
pub struct PlacementScratch {
    /// Undo log `(index, prior free GPUs, prior group)` for atomic gang
    /// placement.
    undo: Vec<(usize, u32, ServerGroup)>,
    /// Candidate-fit list `(server id, free GPUs)` for decision audits.
    fits: Vec<(u32, u32)>,
}

/// The pool-preference order and on-loan group of a request, exposed
/// for the placement-feasibility oracle in `lyra-oracle` (`test-oracles`
/// feature only).
#[cfg(feature = "test-oracles")]
pub fn pool_preference_for_oracles(
    req: &PlacementRequest,
    config: PlacementConfig,
) -> (Vec<PoolKind>, ServerGroup) {
    pool_preference(req, config)
}

/// The server/group compatibility filter, exposed for the
/// placement-feasibility oracle in `lyra-oracle` (`test-oracles`
/// feature only).
#[cfg(feature = "test-oracles")]
pub fn group_compatible_for_oracles(
    server: &ServerView,
    group: ServerGroup,
    config: PlacementConfig,
) -> bool {
    group_compatible(server, group, config)
}

/// Which pools a request may use, in preference order, and the on-loan
/// group it belongs to.
fn pool_preference(
    req: &PlacementRequest,
    config: PlacementConfig,
) -> (Vec<PoolKind>, ServerGroup) {
    let group = if config.special_elastic_treatment && req.role == WorkerRole::ElasticFlexible {
        ServerGroup::Flexible
    } else {
        ServerGroup::Base
    };
    let pools = match req.role {
        WorkerRole::Inelastic => {
            if req.fungible {
                vec![PoolKind::Training, PoolKind::OnLoan]
            } else {
                vec![PoolKind::Training]
            }
        }
        WorkerRole::ElasticBase => {
            if req.hetero {
                // §6: hetero jobs put base demand on training servers.
                vec![PoolKind::Training, PoolKind::OnLoan]
            } else if req.fungible && config.special_elastic_treatment {
                vec![PoolKind::OnLoan, PoolKind::Training]
            } else if req.fungible {
                vec![PoolKind::Training, PoolKind::OnLoan]
            } else {
                vec![PoolKind::Training]
            }
        }
        WorkerRole::ElasticFlexible => {
            if req.hetero || (req.fungible && config.special_elastic_treatment) {
                vec![PoolKind::OnLoan, PoolKind::Training]
            } else if req.fungible {
                vec![PoolKind::Training, PoolKind::OnLoan]
            } else {
                vec![PoolKind::Training]
            }
        }
    };
    (pools, group)
}

/// Whether a server can accept a worker of this request under group rules.
fn group_compatible(server: &ServerView, group: ServerGroup, config: PlacementConfig) -> bool {
    if server.pool == PoolKind::Training || !config.special_elastic_treatment {
        return true;
    }
    server.group == ServerGroup::Unassigned || server.group == group
}

/// Finds the best-fit server index for one worker within `pool`.
///
/// Best fit = the *non-empty* compatible server with the least free GPUs
/// still ≥ demand; falls back to an empty server (lowest id) if none.
fn best_fit(
    servers: &[ServerView],
    pool: PoolKind,
    demand: u32,
    group: ServerGroup,
    config: PlacementConfig,
) -> Option<usize> {
    let mut best: Option<usize> = None;
    let mut best_free = u32::MAX;
    for (i, s) in servers.iter().enumerate() {
        if s.pool != pool || s.free_gpus < demand || s.is_empty() {
            continue;
        }
        if !group_compatible(s, group, config) {
            continue;
        }
        if s.free_gpus < best_free {
            best = Some(i);
            best_free = s.free_gpus;
        }
    }
    if best.is_some() {
        return best;
    }
    // A fresh server: lowest id for determinism.
    servers
        .iter()
        .enumerate()
        .filter(|(_, s)| s.pool == pool && s.is_empty() && s.free_gpus >= demand)
        .min_by_key(|(_, s)| s.id)
        .map(|(i, _)| i)
}

/// Atomically places `count` workers of `gpus_per_worker` GPUs each into
/// one pool, best-fit first.
///
/// Mutates `servers` only on success; returns `None` (state untouched) if
/// the gang does not fit. This is the building block policies use when the
/// worker count depends on the pool — e.g. a fungible job needs twice the
/// workers on T4 servers to keep its global batch size
/// ([`crate::gpu::GpuType::worker_multiplier`]).
pub fn place_gang(
    servers: &mut [ServerView],
    pool: PoolKind,
    count: u32,
    gpus_per_worker: u32,
    group: ServerGroup,
    config: PlacementConfig,
) -> Option<Assignment> {
    place_gang_into(&mut Vec::new(), servers, pool, count, gpus_per_worker, group, config)
}

/// [`place_gang`] over a caller-owned scratch, so the atomic-on-failure
/// undo log reuses one allocation across scheduling epochs.
pub fn place_gang_with(
    scratch: &mut PlacementScratch,
    servers: &mut [ServerView],
    pool: PoolKind,
    count: u32,
    gpus_per_worker: u32,
    group: ServerGroup,
    config: PlacementConfig,
) -> Option<Assignment> {
    place_gang_into(&mut scratch.undo, servers, pool, count, gpus_per_worker, group, config)
}

/// Gang placement core: places workers best-fit first directly into
/// `servers`, logging each server's prior `(free_gpus, group)` in
/// `undo`; if any worker fails to fit, the log is replayed in reverse
/// and the state is exactly as before. Placement only ever touches the
/// chosen servers, so the log stays tiny where the previous
/// clone-and-swap copied the whole cluster per gang attempt.
fn place_gang_into(
    undo: &mut Vec<(usize, u32, ServerGroup)>,
    servers: &mut [ServerView],
    pool: PoolKind,
    count: u32,
    gpus_per_worker: u32,
    group: ServerGroup,
    config: PlacementConfig,
) -> Option<Assignment> {
    let _timing = lyra_obs::span::span("core.placement.gang");
    undo.clear();
    let mut assignment: Vec<(ServerId, u32)> = Vec::new();
    for _ in 0..count {
        let Some(idx) = best_fit(servers, pool, gpus_per_worker, group, config) else {
            for &(i, free, g) in undo.iter().rev() {
                servers[i].free_gpus = free;
                servers[i].group = g;
            }
            return None;
        };
        let s = &mut servers[idx];
        undo.push((idx, s.free_gpus, s.group));
        s.free_gpus -= gpus_per_worker;
        if s.pool == PoolKind::OnLoan && config.special_elastic_treatment
            && s.group == ServerGroup::Unassigned {
                s.group = group;
            }
        match assignment.iter_mut().find(|(id, _)| *id == s.id) {
            Some(slot) => slot.1 += 1,
            None => assignment.push((s.id, 1)),
        }
    }
    Some(assignment)
}

/// Places up to `count` workers across `pools` in preference order,
/// best-effort.
///
/// Non-spanning mode stops at the first pool that accepted at least one
/// worker (single GPU type per job); spanning mode (hetero jobs) keeps
/// going. Returns the assignment, possibly empty.
pub fn place_best_effort(
    servers: &mut [ServerView],
    pools: &[PoolKind],
    count: u32,
    gpus_per_worker: u32,
    group: ServerGroup,
    config: PlacementConfig,
    span_pools: bool,
) -> Assignment {
    let _timing = lyra_obs::span::span("core.placement.flex");
    let mut assignment: Vec<(ServerId, u32)> = Vec::new();
    let mut remaining = count;
    for pool in pools {
        while remaining > 0 {
            let Some(i) = best_fit(servers, *pool, gpus_per_worker, group, config) else {
                break;
            };
            let s = &mut servers[i];
            s.free_gpus -= gpus_per_worker;
            if s.pool == PoolKind::OnLoan
                && config.special_elastic_treatment
                && s.group == ServerGroup::Unassigned
            {
                s.group = group;
            }
            match assignment.iter_mut().find(|(id, _)| *id == s.id) {
                Some(slot) => slot.1 += 1,
                None => assignment.push((s.id, 1)),
            }
            remaining -= 1;
        }
        if remaining == 0 {
            break;
        }
        if !span_pools && !assignment.is_empty() {
            break;
        }
    }
    assignment
}

/// Places a batch of requests with best-fit-decreasing ordering.
///
/// Mutates `servers` (free GPUs and on-loan group labels) to reflect the
/// successful placements. Gang requests (inelastic / elastic base) either
/// place all workers within a single pool — non-hetero jobs must not mix
/// GPU types — or fail atomically. Flexible requests place as many workers
/// as fit, trying each preferred pool in turn, and may split across pools
/// only for hetero jobs.
///
/// # Examples
///
/// ```
/// use lyra_core::placement::*;
/// use lyra_core::snapshot::{PoolKind, ServerView};
/// use lyra_core::{GpuType, JobId};
///
/// let mut servers = vec![ServerView::idle(0, PoolKind::Training, GpuType::V100, 8)];
/// let reqs = vec![PlacementRequest {
///     job: JobId(1),
///     workers: 2,
///     gpus_per_worker: 4,
///     role: WorkerRole::Inelastic,
///     fungible: false,
///     hetero: false,
/// }];
/// let out = place_workers(&mut servers, &reqs, PlacementConfig::default());
/// assert_eq!(out.workers_placed(JobId(1)), 2);
/// assert_eq!(servers[0].free_gpus, 0);
/// ```
pub fn place_workers(
    servers: &mut [ServerView],
    requests: &[PlacementRequest],
    config: PlacementConfig,
) -> PlacementOutcome {
    place_workers_with(&mut PlacementScratch::default(), servers, requests, config)
}

/// [`place_workers`] over a caller-owned [`PlacementScratch`], reusing the
/// gang-placement server copy and the audit candidate list across calls.
pub fn place_workers_with(
    scratch: &mut PlacementScratch,
    servers: &mut [ServerView],
    requests: &[PlacementRequest],
    config: PlacementConfig,
) -> PlacementOutcome {
    let _timing = lyra_obs::span::span("core.placement");
    let auditing = lyra_obs::audit::is_enabled();
    let PlacementScratch {
        undo: gang_undo,
        fits: candidates,
    } = scratch;
    // BFD: largest per-worker GPU demand first; stable by job id.
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| {
        requests[b]
            .gpus_per_worker
            .cmp(&requests[a].gpus_per_worker)
            .then(requests[a].job.cmp(&requests[b].job))
    });

    let mut outcome = PlacementOutcome::default();
    for idx in order {
        let req = &requests[idx];
        if req.workers == 0 {
            continue;
        }
        let (pools, group) = pool_preference(req, config);
        // Candidate fits (and their best-fit costs) before this request
        // mutates the scratch state, for the decision audit.
        candidates.clear();
        if auditing {
            candidate_fits_into(candidates, servers, &pools, req.gpus_per_worker, group, config);
        }
        let gang = matches!(req.role, WorkerRole::Inelastic | WorkerRole::ElasticBase);
        if gang {
            // All workers in one pool, first preference that fits.
            let placed = pools.iter().find_map(|pool| {
                place_gang_into(
                    gang_undo,
                    servers,
                    *pool,
                    req.workers,
                    req.gpus_per_worker,
                    group,
                    config,
                )
            });
            if auditing {
                audit_placement(
                    req.job,
                    req.role,
                    req.gpus_per_worker,
                    placed.as_ref(),
                    candidates,
                );
            }
            match placed {
                Some(a) => outcome.placed.push((req.job, req.role, a)),
                None => outcome.failed.push(req.job),
            }
        } else {
            // Best effort, worker by worker; hetero jobs may span pools.
            let assignment = place_best_effort(
                servers,
                &pools,
                req.workers,
                req.gpus_per_worker,
                group,
                config,
                req.hetero,
            );
            if auditing {
                let placed = (!assignment.is_empty()).then(|| assignment.clone());
                audit_placement(
                    req.job,
                    req.role,
                    req.gpus_per_worker,
                    placed.as_ref(),
                    candidates,
                );
            }
            if !assignment.is_empty() {
                outcome.placed.push((req.job, req.role, assignment));
            } else if req.workers > 0 {
                outcome.failed.push(req.job);
            }
        }
    }
    outcome
}

/// Servers that could host one worker of this request, with their free
/// GPUs (the best-fit cost), in pool-preference then tightest-fit order.
pub(crate) fn candidate_fits(
    servers: &[ServerView],
    pools: &[PoolKind],
    demand: u32,
    group: ServerGroup,
    config: PlacementConfig,
) -> Vec<(u32, u32)> {
    let mut fits = Vec::new();
    candidate_fits_into(&mut fits, servers, pools, demand, group, config);
    fits
}

/// [`candidate_fits`] into a caller-owned buffer (cleared first): each
/// pool's slice is appended then sorted in place, so the result order is
/// identical to the allocating variant without a per-pool temporary.
pub(crate) fn candidate_fits_into(
    fits: &mut Vec<(u32, u32)>,
    servers: &[ServerView],
    pools: &[PoolKind],
    demand: u32,
    group: ServerGroup,
    config: PlacementConfig,
) {
    fits.clear();
    for pool in pools {
        let start = fits.len();
        fits.extend(
            servers
                .iter()
                .filter(|s| {
                    s.pool == *pool && s.free_gpus >= demand && group_compatible(s, group, config)
                })
                .map(|s| (s.id.0, s.free_gpus)),
        );
        fits[start..].sort_by_key(|&(id, free)| (free, id));
    }
}

/// Cap on rejected alternatives kept per placement audit record.
const AUDIT_ALTERNATIVES: usize = 8;

/// Records a [`lyra_obs::audit::AuditRecord::PlacementDecision`]: the
/// chosen server (when the request placed) and the rejected candidates
/// with their best-fit costs.
pub(crate) fn audit_placement(
    job: JobId,
    role: WorkerRole,
    gpus_per_worker: u32,
    assignment: Option<&Assignment>,
    candidates: &[(u32, u32)],
) {
    let role = match role {
        WorkerRole::Inelastic => "inelastic",
        WorkerRole::ElasticBase => "elastic_base",
        WorkerRole::ElasticFlexible => "elastic_flexible",
    };
    let chosen = assignment.and_then(|a| a.first()).map(|(id, _)| id.0);
    let chosen_free_gpus = chosen
        .and_then(|id| candidates.iter().find(|&&(c, _)| c == id))
        .map(|&(_, free)| free)
        .unwrap_or(0);
    let alternatives = candidates
        .iter()
        .filter(|&&(id, _)| Some(id) != chosen)
        .take(AUDIT_ALTERNATIVES)
        .map(|&(server, free_gpus)| lyra_obs::audit::PlacementAlternative { server, free_gpus })
        .collect();
    lyra_obs::audit::record(lyra_obs::audit::AuditRecord::PlacementDecision {
        job: job.0,
        role: role.to_string(),
        gpus: gpus_per_worker,
        chosen,
        chosen_free_gpus,
        alternatives,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuType;

    fn training(n: u32) -> Vec<ServerView> {
        (0..n)
            .map(|i| ServerView::idle(i, PoolKind::Training, GpuType::V100, 8))
            .collect()
    }

    fn mixed(train: u32, loaned: u32) -> Vec<ServerView> {
        let mut v = training(train);
        for i in 0..loaned {
            v.push(ServerView::idle(
                train + i,
                PoolKind::OnLoan,
                GpuType::T4,
                8,
            ));
        }
        v
    }

    fn req(job: u64, workers: u32, gpw: u32, role: WorkerRole) -> PlacementRequest {
        PlacementRequest {
            job: JobId(job),
            workers,
            gpus_per_worker: gpw,
            role,
            fungible: false,
            hetero: false,
        }
    }

    #[test]
    fn best_fit_prefers_fullest_server() {
        let mut servers = training(2);
        servers[0].free_gpus = 3; // non-empty, tight fit
        servers[1].free_gpus = 7; // non-empty, loose fit
        let out = place_workers(
            &mut servers,
            &[req(1, 1, 3, WorkerRole::Inelastic)],
            PlacementConfig::default(),
        );
        assert_eq!(out.placed[0].2, vec![(ServerId(0), 1)]);
        assert_eq!(servers[0].free_gpus, 0);
    }

    #[test]
    fn empty_server_only_when_no_partial_fits() {
        let mut servers = training(2);
        servers[0].free_gpus = 2; // non-empty but too small for 4 GPUs
        let out = place_workers(
            &mut servers,
            &[req(1, 1, 4, WorkerRole::Inelastic)],
            PlacementConfig::default(),
        );
        assert_eq!(out.placed[0].2, vec![(ServerId(1), 1)]);
    }

    #[test]
    fn bfd_orders_by_per_worker_demand() {
        // An 8-GPU and two 4-GPU workers into two servers: the 8-GPU worker
        // must be placed first or fragmentation strands it.
        let mut servers = training(2);
        let reqs = vec![
            req(1, 2, 4, WorkerRole::Inelastic),
            req(2, 1, 8, WorkerRole::Inelastic),
        ];
        let out = place_workers(&mut servers, &reqs, PlacementConfig::default());
        assert!(out.failed.is_empty());
        assert_eq!(out.workers_placed(JobId(1)), 2);
        assert_eq!(out.workers_placed(JobId(2)), 1);
        assert_eq!(servers[0].free_gpus + servers[1].free_gpus, 0);
    }

    #[test]
    fn gang_placement_is_atomic() {
        let mut servers = training(1); // 8 GPUs total
        let reqs = vec![req(1, 3, 4, WorkerRole::Inelastic)]; // needs 12
        let before = servers.clone();
        let out = place_workers(&mut servers, &reqs, PlacementConfig::default());
        assert_eq!(out.failed, vec![JobId(1)]);
        assert_eq!(servers, before, "failed gang leaves no residue");
    }

    #[test]
    fn non_fungible_cannot_use_on_loan() {
        let mut servers = mixed(0, 2);
        let out = place_workers(
            &mut servers,
            &[req(1, 1, 1, WorkerRole::Inelastic)],
            PlacementConfig::default(),
        );
        assert_eq!(out.failed, vec![JobId(1)]);
    }

    #[test]
    fn fungible_inelastic_prefers_training() {
        let mut servers = mixed(1, 1);
        let mut r = req(1, 1, 2, WorkerRole::Inelastic);
        r.fungible = true;
        let out = place_workers(&mut servers, &[r], PlacementConfig::default());
        assert_eq!(out.placed[0].2[0].0, ServerId(0), "training first");
    }

    #[test]
    fn elastic_fungible_prefers_on_loan() {
        let mut servers = mixed(1, 1);
        let mut r = req(1, 2, 2, WorkerRole::ElasticBase);
        r.fungible = true;
        let out = place_workers(&mut servers, &[r], PlacementConfig::default());
        assert_eq!(out.placed[0].2[0].0, ServerId(1), "on-loan first");
        assert_eq!(servers[1].group, ServerGroup::Base);
    }

    #[test]
    fn base_and_flexible_go_to_separate_groups() {
        let mut servers = mixed(0, 2);
        let mut base = req(1, 2, 2, WorkerRole::ElasticBase);
        base.fungible = true;
        let mut flex = req(1, 2, 2, WorkerRole::ElasticFlexible);
        flex.fungible = true;
        let out = place_workers(&mut servers, &[base, flex], PlacementConfig::default());
        assert!(out.failed.is_empty());
        let groups: Vec<ServerGroup> = servers.iter().map(|s| s.group).collect();
        assert!(groups.contains(&ServerGroup::Base));
        assert!(groups.contains(&ServerGroup::Flexible));
        // No server hosts both roles.
        for (_, role, a) in &out.placed {
            for (sid, _) in a {
                let s = servers.iter().find(|s| s.id == *sid).unwrap();
                match role {
                    WorkerRole::ElasticBase => assert_eq!(s.group, ServerGroup::Base),
                    WorkerRole::ElasticFlexible => assert_eq!(s.group, ServerGroup::Flexible),
                    WorkerRole::Inelastic => {}
                }
            }
        }
    }

    #[test]
    fn group_split_disabled_packs_together() {
        let mut servers = mixed(0, 2);
        let mut base = req(1, 2, 2, WorkerRole::ElasticBase);
        base.fungible = true;
        let mut flex = req(1, 2, 2, WorkerRole::ElasticFlexible);
        flex.fungible = true;
        let config = PlacementConfig {
            special_elastic_treatment: false,
        };
        let out = place_workers(&mut servers, &[base, flex], config);
        // Without special treatment both land where BFD sends them and the
        // flexible request degrades to training-pool preference — here only
        // on-loan exists for fungible jobs... base prefers Training first
        // but none exists, so it fails? No: fungible allows OnLoan second.
        assert!(out.failed.is_empty());
        assert_eq!(servers[0].group, ServerGroup::Unassigned);
    }

    #[test]
    fn flexible_is_best_effort() {
        let mut servers = mixed(1, 0); // 8 training GPUs
        let r = req(1, 5, 2, WorkerRole::ElasticFlexible); // wants 10 GPUs
        let out = place_workers(&mut servers, &[r], PlacementConfig::default());
        assert_eq!(out.workers_placed(JobId(1)), 4);
        assert!(out.failed.is_empty());
        assert_eq!(servers[0].free_gpus, 0);
    }

    #[test]
    fn non_hetero_flexible_does_not_span_pools() {
        let mut servers = mixed(1, 1);
        let mut r = req(1, 8, 2, WorkerRole::ElasticFlexible);
        r.fungible = true;
        let out = place_workers(&mut servers, &[r], PlacementConfig::default());
        // Prefers on-loan (4 workers fit); must NOT spill onto V100s.
        assert_eq!(out.workers_placed(JobId(1)), 4);
        assert_eq!(servers[0].free_gpus, 8, "training untouched");
    }

    #[test]
    fn hetero_flexible_spans_pools() {
        let mut servers = mixed(1, 1);
        let mut r = req(1, 8, 2, WorkerRole::ElasticFlexible);
        r.fungible = true;
        r.hetero = true;
        let out = place_workers(&mut servers, &[r], PlacementConfig::default());
        assert_eq!(out.workers_placed(JobId(1)), 8);
        assert_eq!(servers[0].free_gpus, 0);
        assert_eq!(servers[1].free_gpus, 0);
    }

    #[test]
    fn zero_worker_request_is_ignored() {
        let mut servers = training(1);
        let out = place_workers(
            &mut servers,
            &[req(1, 0, 2, WorkerRole::Inelastic)],
            PlacementConfig::default(),
        );
        assert!(out.placed.is_empty() && out.failed.is_empty());
    }

    #[test]
    fn assignment_counts_sum_to_workers() {
        let mut servers = training(3);
        let reqs = vec![req(1, 5, 3, WorkerRole::Inelastic)];
        let out = place_workers(&mut servers, &reqs, PlacementConfig::default());
        let total: u32 = out.placed[0].2.iter().map(|(_, w)| w).sum();
        assert_eq!(total, 5);
        let used: u32 = servers.iter().map(|s| s.used_gpus()).sum();
        assert_eq!(used, 15);
    }
}
