//! The training-job model.
//!
//! A job asks for a number of *workers* (containers), each of which occupies
//! a fixed number of GPUs. Jobs come in the flavours the paper's trace
//! analysis identifies (§7.1):
//!
//! * **Inelastic** — a fixed worker count; the job gang-waits until its full
//!   demand can be satisfied.
//! * **Elastic** — a worker count anywhere in `[w_min, w_max]`, adjustable
//!   on the fly (§2.2). The `w_min` part is the *base demand* and the rest
//!   is *flexible demand* (§5.2).
//! * **Fungible** — can run on either GPU type across runs (21 % of the
//!   trace), the prerequisite for capacity loaning.
//! * **Heterogeneous-capable** — can mix GPU types within one run, at a
//!   throughput penalty (§2.1, evaluated in §7.2).
//!
//! Progress is measured in *work units*: reference (V100) worker-seconds.
//! A job running `w` workers at aggregate speedup `s(w)` completes
//! `s(w) · capability` work units per second, so its running time is
//! inversely proportional to its allocation in the linear-scaling regime the
//! paper assumes (§5), and degrades gracefully under the non-linear curves
//! of §7.2.

use crate::gpu::GpuType;
use serde::{Deserialize, Serialize};

/// Unique identifier of a job within one trace / simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// The scaling range of an elastic job (§2.2: "limited elasticity where the
/// worker number varies within a range").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Elasticity {
    /// Minimum workers the job needs to make progress (base demand).
    pub w_min: u32,
    /// Maximum workers the job can productively use.
    pub w_max: u32,
}

impl Elasticity {
    /// Creates a scaling range.
    ///
    /// # Panics
    ///
    /// Panics if `w_min` is zero or exceeds `w_max`.
    pub fn new(w_min: u32, w_max: u32) -> Self {
        assert!(w_min > 0, "base demand must be positive");
        assert!(w_min <= w_max, "scaling range must be non-empty");
        Elasticity { w_min, w_max }
    }

    /// Number of flexible (beyond-base) workers this job may take.
    pub fn flexible(self) -> u32 {
        self.w_max - self.w_min
    }
}

/// Whether a job's demand is fixed or a range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobClass {
    /// Fixed demand; gang-scheduled all-or-nothing.
    Inelastic,
    /// Variable demand within [`Elasticity`]'s range.
    Elastic,
}

/// How aggregate training throughput grows with the number of workers.
///
/// The paper assumes linear scaling within the range for the models it
/// enables elasticity for (§2.2, Figure 3), and evaluates a pessimistic
/// per-worker-loss curve in §7.2 ("when one more worker is added to a job,
/// we add a 20 % loss to the throughput brought by this worker").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScalingCurve {
    /// `s(w) = w`: running time inversely proportional to workers.
    Linear,
    /// `s(w) = 1 + (w − 1)·(1 − loss)`: every worker beyond the first
    /// contributes only `1 − loss` of a full worker.
    PerWorkerLoss {
        /// Fraction of an added worker's throughput that is lost.
        loss: f64,
    },
    /// Empirical speedups: `table[w − 1]` is the aggregate speedup with `w`
    /// workers. Queries beyond the table extrapolate with the last
    /// marginal gain.
    Table(Vec<f64>),
}

impl ScalingCurve {
    /// Aggregate speedup with `workers` workers relative to one worker.
    ///
    /// Returns `0.0` for zero workers. Speedup is non-decreasing in the
    /// worker count for all built-in curves with `loss ≤ 1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use lyra_core::ScalingCurve;
    /// assert_eq!(ScalingCurve::Linear.speedup(4), 4.0);
    /// let lossy = ScalingCurve::PerWorkerLoss { loss: 0.2 };
    /// assert!((lossy.speedup(4) - (1.0 + 3.0 * 0.8)).abs() < 1e-12);
    /// ```
    pub fn speedup(&self, workers: u32) -> f64 {
        if workers == 0 {
            return 0.0;
        }
        match self {
            ScalingCurve::Linear => f64::from(workers),
            ScalingCurve::PerWorkerLoss { loss } => 1.0 + f64::from(workers - 1) * (1.0 - loss),
            ScalingCurve::Table(table) => {
                if table.is_empty() {
                    return f64::from(workers);
                }
                let idx = (workers as usize).min(table.len());
                let base = table[idx - 1];
                if (workers as usize) <= table.len() {
                    base
                } else {
                    // Extrapolate with the last observed marginal gain.
                    let marginal = if table.len() >= 2 {
                        (table[table.len() - 1] - table[table.len() - 2]).max(0.0)
                    } else {
                        table[0]
                    };
                    base + marginal * (workers as usize - table.len()) as f64
                }
            }
        }
    }
}

/// The DNN family a job trains, used to pick throughput curves and tuning
/// behaviour. The four named families are the ones Figure 3 profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// ResNet-50 image classification.
    ResNet50,
    /// VGG-16 image classification.
    Vgg16,
    /// BERT language model.
    Bert,
    /// GNMT-16 machine translation.
    Gnmt16,
    /// Any other model; treated as inelastic-only by Lyra (§2.2).
    Generic,
}

impl ModelFamily {
    /// Whether the paper's measurements say this family scales well enough
    /// for elastic scheduling (§2.2).
    pub fn scales_well(self) -> bool {
        !matches!(self, ModelFamily::Generic)
    }
}

/// A training job as submitted to the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique id.
    pub id: JobId,
    /// Submission time in seconds from trace start.
    pub submit_time_s: f64,
    /// GPUs occupied by each worker container.
    pub gpus_per_worker: u32,
    /// Requested workers: the fixed demand of an inelastic job, or the base
    /// demand (`w_min`) of an elastic one.
    pub demand: u32,
    /// Scaling range, present only for elastic jobs.
    pub elasticity: Option<Elasticity>,
    /// Running time in seconds when the job holds its *maximum* demand on
    /// training GPUs (the paper's "min. running time" for elastic jobs).
    pub min_running_time_s: f64,
    /// Whether the job can run on either GPU type (capacity-loaning
    /// candidate).
    pub fungible: bool,
    /// Whether the job can mix GPU types within one run.
    pub hetero_capable: bool,
    /// Whether the job checkpoints, so preemption preserves progress.
    pub checkpointing: bool,
    /// DNN family.
    pub model: ModelFamily,
    /// Throughput-vs-workers behaviour within the scaling range.
    pub curve: ScalingCurve,
    /// GPU type the demand was sized for (local batch size fits its memory).
    pub reference_gpu: GpuType,
    /// Seconds of stalled progress charged each time the job sheds workers
    /// (malleable-workload shrink cost; 0 means free, the paper's model).
    pub shrink_cost_s: f64,
    /// Seconds of stalled progress charged each time the job gains workers
    /// beyond the rendezvous pause (malleable-workload expand cost).
    pub expand_cost_s: f64,
    /// Completion deadline in seconds from trace start, for SLO scenarios.
    /// Deadlines never influence scheduling decisions; they only feed the
    /// deadline-miss rollup.
    pub deadline_s: Option<f64>,
}

impl JobSpec {
    /// Builds an inelastic job with the common defaults.
    pub fn inelastic(
        id: u64,
        submit_time_s: f64,
        demand: u32,
        gpus_per_worker: u32,
        running_time_s: f64,
    ) -> Self {
        JobSpec {
            id: JobId(id),
            submit_time_s,
            gpus_per_worker,
            demand,
            elasticity: None,
            min_running_time_s: running_time_s,
            fungible: false,
            hetero_capable: false,
            checkpointing: false,
            model: ModelFamily::Generic,
            curve: ScalingCurve::Linear,
            reference_gpu: GpuType::V100,
            shrink_cost_s: 0.0,
            expand_cost_s: 0.0,
            deadline_s: None,
        }
    }

    /// Builds an elastic job with the common defaults.
    ///
    /// `min_running_time_s` is the running time when the job holds `w_max`
    /// workers, matching Table 2's convention.
    pub fn elastic(
        id: u64,
        submit_time_s: f64,
        w_min: u32,
        w_max: u32,
        gpus_per_worker: u32,
        min_running_time_s: f64,
    ) -> Self {
        JobSpec {
            id: JobId(id),
            submit_time_s,
            gpus_per_worker,
            demand: w_min,
            elasticity: Some(Elasticity::new(w_min, w_max)),
            min_running_time_s,
            fungible: false,
            hetero_capable: false,
            checkpointing: false,
            model: ModelFamily::ResNet50,
            curve: ScalingCurve::Linear,
            reference_gpu: GpuType::V100,
            shrink_cost_s: 0.0,
            expand_cost_s: 0.0,
            deadline_s: None,
        }
    }

    /// Marks the job as fungible (runnable on loaned inference servers).
    pub fn with_fungible(mut self, fungible: bool) -> Self {
        self.fungible = fungible;
        self
    }

    /// Marks the job as heterogeneous-training capable.
    pub fn with_hetero(mut self, hetero: bool) -> Self {
        self.hetero_capable = hetero;
        self
    }

    /// Enables checkpointing.
    pub fn with_checkpointing(mut self, ckpt: bool) -> Self {
        self.checkpointing = ckpt;
        self
    }

    /// Sets the model family.
    pub fn with_model(mut self, model: ModelFamily) -> Self {
        self.model = model;
        self
    }

    /// Sets the scaling curve.
    pub fn with_curve(mut self, curve: ScalingCurve) -> Self {
        self.curve = curve;
        self
    }

    /// Sets the malleable shrink/expand stall costs in seconds.
    pub fn with_resize_costs(mut self, shrink_s: f64, expand_s: f64) -> Self {
        self.shrink_cost_s = shrink_s;
        self.expand_cost_s = expand_s;
        self
    }

    /// Sets a completion deadline in seconds from trace start.
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        self.deadline_s = Some(deadline_s);
        self
    }

    /// Whether this job may take a variable number of workers.
    pub fn is_elastic(&self) -> bool {
        self.elasticity.is_some()
    }

    /// The job class.
    pub fn class(&self) -> JobClass {
        if self.is_elastic() {
            JobClass::Elastic
        } else {
            JobClass::Inelastic
        }
    }

    /// Minimum workers needed to run (base demand).
    pub fn w_min(&self) -> u32 {
        self.elasticity.map_or(self.demand, |e| e.w_min)
    }

    /// Maximum workers the job can use.
    pub fn w_max(&self) -> u32 {
        self.elasticity.map_or(self.demand, |e| e.w_max)
    }

    /// GPUs needed by the base demand.
    pub fn base_gpus(&self) -> u32 {
        self.w_min() * self.gpus_per_worker
    }

    /// GPUs needed by the maximum demand.
    pub fn max_gpus(&self) -> u32 {
        self.w_max() * self.gpus_per_worker
    }

    /// Total work in reference worker-seconds.
    ///
    /// Defined so that running at `w_max` on reference GPUs takes exactly
    /// [`JobSpec::min_running_time_s`].
    pub fn work(&self) -> f64 {
        self.curve.speedup(self.w_max()) * self.min_running_time_s
    }

    /// Work units completed per second with `workers` workers on GPUs with
    /// the given `capability` (1.0 for V100, 1/3 for T4).
    pub fn service_rate(&self, workers: u32, capability: f64) -> f64 {
        self.curve.speedup(workers) * capability
    }

    /// Running time in seconds with a constant allocation of `workers`
    /// workers on reference GPUs.
    ///
    /// Returns `f64::INFINITY` for zero workers.
    ///
    /// # Examples
    ///
    /// ```
    /// use lyra_core::JobSpec;
    /// // Table 2's job A: range [2, 6], 50 s at full allocation.
    /// let a = JobSpec::elastic(0, 0.0, 2, 6, 1, 50.0);
    /// assert!((a.running_time(6) - 50.0).abs() < 1e-9);
    /// assert!((a.running_time(2) - 150.0).abs() < 1e-9);
    /// ```
    pub fn running_time(&self, workers: u32) -> f64 {
        let rate = self.service_rate(workers, 1.0);
        if rate <= 0.0 {
            f64::INFINITY
        } else {
            self.work() / rate
        }
    }

    /// Running time at base demand — the value SJF sorts on in phase 1.
    pub fn base_running_time(&self) -> f64 {
        self.running_time(self.w_min())
    }

    /// JCT reduction from holding `extra` flexible workers on top of base
    /// demand, over the job's remaining `work_left` work units.
    ///
    /// This is the item value of the phase-2 multiple-choice knapsack
    /// (§5.2, Figure 6).
    pub fn jct_reduction(&self, extra: u32, work_left: f64) -> f64 {
        let base = self.w_min();
        let r0 = self.service_rate(base, 1.0);
        let r1 = self.service_rate(base + extra, 1.0);
        if r0 <= 0.0 || r1 <= 0.0 {
            return 0.0;
        }
        (work_left / r0 - work_left / r1).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elasticity_rejects_bad_ranges() {
        let r = std::panic::catch_unwind(|| Elasticity::new(0, 4));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| Elasticity::new(5, 4));
        assert!(r.is_err());
        assert_eq!(Elasticity::new(2, 6).flexible(), 4);
    }

    #[test]
    fn linear_curve_is_proportional() {
        let c = ScalingCurve::Linear;
        assert_eq!(c.speedup(0), 0.0);
        assert_eq!(c.speedup(1), 1.0);
        assert_eq!(c.speedup(8), 8.0);
    }

    #[test]
    fn per_worker_loss_matches_paper_formula() {
        // §7.2: each added worker brings 80 % of a worker's throughput.
        let c = ScalingCurve::PerWorkerLoss { loss: 0.2 };
        assert_eq!(c.speedup(1), 1.0);
        assert!((c.speedup(2) - 1.8).abs() < 1e-12);
        assert!((c.speedup(5) - (1.0 + 4.0 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn table_curve_interpolates_and_extrapolates() {
        let c = ScalingCurve::Table(vec![1.0, 1.9, 2.7]);
        assert_eq!(c.speedup(2), 1.9);
        assert_eq!(c.speedup(3), 2.7);
        // Beyond the table: last marginal gain 0.8 per worker.
        assert!((c.speedup(5) - (2.7 + 2.0 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn table_curve_empty_falls_back_to_linear() {
        let c = ScalingCurve::Table(vec![]);
        assert_eq!(c.speedup(3), 3.0);
    }

    #[test]
    fn inelastic_job_has_degenerate_range() {
        let j = JobSpec::inelastic(1, 0.0, 4, 2, 100.0);
        assert_eq!(j.class(), JobClass::Inelastic);
        assert_eq!(j.w_min(), 4);
        assert_eq!(j.w_max(), 4);
        assert_eq!(j.base_gpus(), 8);
        assert!((j.work() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn elastic_running_time_is_inverse_in_workers() {
        let j = JobSpec::elastic(2, 0.0, 2, 6, 1, 20.0);
        // Table 2's job B: work = 6 × 20 = 120 worker-seconds.
        assert!((j.work() - 120.0).abs() < 1e-9);
        assert!((j.running_time(2) - 60.0).abs() < 1e-9);
        assert!((j.running_time(4) - 30.0).abs() < 1e-9);
        assert!((j.running_time(6) - 20.0).abs() < 1e-9);
        assert_eq!(j.running_time(0), f64::INFINITY);
    }

    #[test]
    fn jct_reduction_matches_figure_6() {
        // Figure 6 uses Table 4's jobs. Job B: range [2, 6], 20 s minimum
        // running time, 1 GPU per worker. Values over full work.
        let b = JobSpec::elastic(3, 0.0, 2, 6, 1, 20.0);
        let work = b.work();
        // Running time at base = 60 s; with 1 extra worker = 120/3 = 40 s
        // → reduction 20; 2 extra → 60 − 30 = 30; 3 → 36; 4 → 40.
        assert!((b.jct_reduction(1, work) - 20.0).abs() < 1e-9);
        assert!((b.jct_reduction(2, work) - 30.0).abs() < 1e-9);
        assert!((b.jct_reduction(3, work) - 36.0).abs() < 1e-9);
        assert!((b.jct_reduction(4, work) - 40.0).abs() < 1e-9);
        // Job A: range [2, 3], 100 s at max.
        let a = JobSpec::elastic(4, 0.0, 2, 3, 2, 100.0);
        assert!((a.jct_reduction(1, a.work()) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn service_rate_scales_with_capability() {
        let j = JobSpec::elastic(5, 0.0, 2, 4, 1, 30.0);
        assert!((j.service_rate(4, 1.0) - 4.0).abs() < 1e-12);
        assert!((j.service_rate(4, 1.0 / 3.0) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn builder_flags_apply() {
        let j = JobSpec::inelastic(6, 1.0, 1, 8, 10.0)
            .with_fungible(true)
            .with_hetero(true)
            .with_checkpointing(true)
            .with_model(ModelFamily::Bert)
            .with_curve(ScalingCurve::PerWorkerLoss { loss: 0.2 });
        assert!(j.fungible && j.hetero_capable && j.checkpointing);
        assert_eq!(j.model, ModelFamily::Bert);
        assert!(j.model.scales_well());
        assert!(!ModelFamily::Generic.scales_well());
    }
}
