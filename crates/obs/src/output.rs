//! Experiment output writer with `--quiet` / `--json` modes.
//!
//! The bench experiments used to print tables straight to stdout with
//! `println!`; routing them through [`emitln!`](crate::emitln) instead
//! lets the CLI silence human-readable tables (`--quiet`) or replace
//! them with machine-readable JSON lines (`--json`). The mode is a
//! process-global atomic so experiment code needs no handle.

use std::sync::atomic::{AtomicU8, Ordering};

/// How experiment output should be written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Human-readable tables on stdout (default).
    Normal,
    /// Suppress tables; only JSON records and errors are written.
    Quiet,
    /// Suppress tables and write one JSON line per result record.
    Json,
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide output mode.
pub fn set_mode(mode: OutputMode) {
    let v = match mode {
        OutputMode::Normal => 0,
        OutputMode::Quiet => 1,
        OutputMode::Json => 2,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// The current output mode.
pub fn mode() -> OutputMode {
    match MODE.load(Ordering::Relaxed) {
        1 => OutputMode::Quiet,
        2 => OutputMode::Json,
        _ => OutputMode::Normal,
    }
}

/// Writes one human-readable line; suppressed in `Quiet` and `Json`
/// modes. Prefer the [`emitln!`](crate::emitln) macro.
pub fn emit_line(line: &str) {
    if mode() == OutputMode::Normal {
        println!("{line}");
    }
}

/// Writes one machine-readable JSON line; only emitted in `Json` mode.
pub fn emit_json(line: &str) {
    if mode() == OutputMode::Json {
        println!("{line}");
    }
}

/// `println!` replacement for experiment tables: formats its arguments
/// and routes the line through the output writer so `--quiet` / `--json`
/// can silence it.
#[macro_export]
macro_rules! emitln {
    () => { $crate::output::emit_line("") };
    ($($arg:tt)*) => { $crate::output::emit_line(&format!($($arg)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_round_trips() {
        // Runs in one process with other tests; restore Normal after.
        set_mode(OutputMode::Quiet);
        assert_eq!(mode(), OutputMode::Quiet);
        set_mode(OutputMode::Json);
        assert_eq!(mode(), OutputMode::Json);
        set_mode(OutputMode::Normal);
        assert_eq!(mode(), OutputMode::Normal);
    }
}
