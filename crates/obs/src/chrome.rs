//! Chrome / Perfetto `trace_event` JSON export.
//!
//! [`export_chrome_trace`] renders a recorded event log onto one
//! zoomable timeline loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>:
//!
//! * **pid 1 "jobs"** — one thread per job; every attributed interval
//!   (from [`attribute_log`]) becomes a matched `B`/`E` span named by
//!   its [`DelayCause`](crate::attribution::DelayCause) label, with
//!   instant markers for preemptions and fault kills.
//! * **pid 2 "scheduler"** — scheduler-epoch spans (`X` complete
//!   events between consecutive `SchedulerEpoch` emissions) plus a
//!   queued/running counter track.
//! * **pid 3 "capacity"** — a loaned-servers counter driven by
//!   `LoanGrant`/`ReclaimGrant`, with instant markers for reclaim
//!   grants, carryovers and deadline misses.
//!
//! Timestamps are simulated microseconds (`time_ms * 1000`) — never
//! wall-clock — so same-seed runs export byte-identical traces.
//! [`validate_chrome_trace`] is the minimal schema check CI runs against
//! every exported trace: well-formed JSON, monotone `ts` per
//! `(pid, tid)` track, and matched `B`/`E` pairs.
//!
//! [`export_provenance_trace`] layers Perfetto **flow events** (`ph:
//! "s"` / `"f"`) derived from the provenance graph on top of the
//! standard trace: preemption arrows run from the scheduler track to
//! the victim's job track, and loan arrows to the launch or scale-out
//! the loan enabled — so cross-job causality renders as arrows between
//! tracks.

use serde::Value;

use crate::event::{SchedEvent, TimedEvent};
use crate::graph::EdgeKind;
use crate::lifecycle::attribute_log;
use crate::provenance::build_provenance;

const PID_JOBS: u64 = 1;
const PID_SCHED: u64 = 2;
const PID_CAPACITY: u64 = 3;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn vs(v: &str) -> Value {
    Value::Str(v.to_string())
}

fn vu(v: u64) -> Value {
    Value::UInt(v)
}

/// Sort rank within one timestamp: close spans before opening new ones
/// so per-track `ts` order keeps `E` ahead of the adjacent `B`, and
/// flow events (`s`/`f`) after the slices they bind into.
fn phase_rank(ph: &str) -> u8 {
    match ph {
        "M" => 0,
        "E" => 1,
        "i" => 2,
        "C" => 3,
        "X" => 4,
        "B" => 5,
        _ => 6, // flows ("s"/"f")
    }
}

struct TraceBuilder {
    events: Vec<(u64, u8, usize, Value)>,
    next: usize,
}

impl TraceBuilder {
    fn new() -> Self {
        TraceBuilder {
            events: Vec::new(),
            next: 0,
        }
    }

    fn push(&mut self, ts_us: u64, ph: &str, value: Value) {
        self.events.push((ts_us, phase_rank(ph), self.next, value));
        self.next += 1;
    }

    fn meta(&mut self, pid: u64, tid: u64, kind: &str, name: &str) {
        self.push(
            0,
            "M",
            obj(vec![
                ("name", vs(kind)),
                ("ph", vs("M")),
                ("ts", vu(0)),
                ("pid", vu(pid)),
                ("tid", vu(tid)),
                ("args", obj(vec![("name", vs(name))])),
            ]),
        );
    }

    fn render(mut self) -> String {
        self.events
            .sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, (_, _, _, v)) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&serde_json::to_string(v).expect("trace event serialises"));
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Exports a parsed event log as Chrome `trace_event` JSON (one event
/// per line inside `traceEvents`, so pinned traces diff readably).
pub fn export_chrome_trace(events: &[TimedEvent]) -> String {
    build_trace(events).render()
}

/// Builds the standard trace (lifelines, markers, counters, epoch
/// spans) without rendering, so layered exporters can add to it.
fn build_trace(events: &[TimedEvent]) -> TraceBuilder {
    let mut b = TraceBuilder::new();
    b.meta(PID_JOBS, 0, "process_name", "jobs");
    b.meta(PID_SCHED, 0, "process_name", "scheduler");
    b.meta(PID_CAPACITY, 0, "process_name", "capacity");
    b.meta(PID_SCHED, 1, "thread_name", "epochs");

    // Job lifelines: one B/E span per attributed interval.
    let attrs = attribute_log(events);
    for a in &attrs {
        let tid = a.job + 1; // tid 0 is reserved for process metadata
        b.meta(PID_JOBS, tid, "thread_name", &format!("job {}", a.job));
        for iv in &a.intervals {
            b.push(
                iv.start_ms * 1000,
                "B",
                obj(vec![
                    ("name", vs(iv.cause.label())),
                    ("cat", vs("job")),
                    ("ph", vs("B")),
                    ("ts", vu(iv.start_ms * 1000)),
                    ("pid", vu(PID_JOBS)),
                    ("tid", vu(tid)),
                    ("args", obj(vec![("cause", vs(iv.cause.label()))])),
                ]),
            );
            b.push(
                iv.end_ms * 1000,
                "E",
                obj(vec![
                    ("name", vs(iv.cause.label())),
                    ("cat", vs("job")),
                    ("ph", vs("E")),
                    ("ts", vu(iv.end_ms * 1000)),
                    ("pid", vu(PID_JOBS)),
                    ("tid", vu(tid)),
                ]),
            );
        }
    }

    // Markers, counters and epoch spans from the raw stream.
    let mut loaned: u64 = 0;
    let mut epochs: Vec<(u64, u32, u32, u32)> = Vec::new();
    let mut last_us = 0u64;
    for ev in events {
        let ts = ev.time_ms * 1000;
        last_us = last_us.max(ts);
        match &ev.event {
            SchedEvent::JobPreempt {
                job, checkpointed, ..
            } => {
                b.push(
                    ts,
                    "i",
                    obj(vec![
                        ("name", vs("preempt")),
                        ("cat", vs("job")),
                        ("ph", vs("i")),
                        ("s", vs("t")),
                        ("ts", vu(ts)),
                        ("pid", vu(PID_JOBS)),
                        ("tid", vu(job + 1)),
                        ("args", obj(vec![("checkpointed", Value::Bool(*checkpointed))])),
                    ]),
                );
            }
            SchedEvent::Fault { kind, target } if kind == "job_killed" => {
                b.push(
                    ts,
                    "i",
                    obj(vec![
                        ("name", vs("fault-kill")),
                        ("cat", vs("job")),
                        ("ph", vs("i")),
                        ("s", vs("t")),
                        ("ts", vu(ts)),
                        ("pid", vu(PID_JOBS)),
                        ("tid", vu(target + 1)),
                    ]),
                );
            }
            SchedEvent::SchedulerEpoch {
                launches,
                queued,
                running,
            } => {
                epochs.push((ts, *launches, *queued, *running));
                b.push(
                    ts,
                    "C",
                    obj(vec![
                        ("name", vs("scheduler-load")),
                        ("ph", vs("C")),
                        ("ts", vu(ts)),
                        ("pid", vu(PID_SCHED)),
                        ("tid", vu(0)),
                        (
                            "args",
                            obj(vec![
                                ("queued", vu(u64::from(*queued))),
                                ("running", vu(u64::from(*running))),
                            ]),
                        ),
                    ]),
                );
            }
            SchedEvent::LoanGrant { servers } => {
                loaned += servers.len() as u64;
                b.push(
                    ts,
                    "C",
                    obj(vec![
                        ("name", vs("loaned-servers")),
                        ("ph", vs("C")),
                        ("ts", vu(ts)),
                        ("pid", vu(PID_CAPACITY)),
                        ("tid", vu(0)),
                        ("args", obj(vec![("loaned", vu(loaned))])),
                    ]),
                );
            }
            SchedEvent::ReclaimGrant {
                demanded,
                returned_flex,
                returned_idle,
                returned_preempt,
                ..
            } => {
                let returned = u64::from(returned_flex + returned_idle + returned_preempt);
                loaned = loaned.saturating_sub(returned);
                b.push(
                    ts,
                    "C",
                    obj(vec![
                        ("name", vs("loaned-servers")),
                        ("ph", vs("C")),
                        ("ts", vu(ts)),
                        ("pid", vu(PID_CAPACITY)),
                        ("tid", vu(0)),
                        ("args", obj(vec![("loaned", vu(loaned))])),
                    ]),
                );
                b.push(
                    ts,
                    "i",
                    obj(vec![
                        ("name", vs("reclaim")),
                        ("cat", vs("capacity")),
                        ("ph", vs("i")),
                        ("s", vs("p")),
                        ("ts", vu(ts)),
                        ("pid", vu(PID_CAPACITY)),
                        ("tid", vu(0)),
                        ("args", obj(vec![("demanded", vu(u64::from(*demanded)))])),
                    ]),
                );
            }
            SchedEvent::ReclaimCarryover { servers, .. } => {
                b.push(
                    ts,
                    "i",
                    obj(vec![
                        ("name", vs("reclaim-carryover")),
                        ("cat", vs("capacity")),
                        ("ph", vs("i")),
                        ("s", vs("p")),
                        ("ts", vu(ts)),
                        ("pid", vu(PID_CAPACITY)),
                        ("tid", vu(0)),
                        ("args", obj(vec![("owed", vu(u64::from(*servers)))])),
                    ]),
                );
            }
            SchedEvent::ReclaimDeadlineMiss { servers } => {
                b.push(
                    ts,
                    "i",
                    obj(vec![
                        ("name", vs("reclaim-deadline-miss")),
                        ("cat", vs("capacity")),
                        ("ph", vs("i")),
                        ("s", vs("p")),
                        ("ts", vu(ts)),
                        ("pid", vu(PID_CAPACITY)),
                        ("tid", vu(0)),
                        ("args", obj(vec![("owed", vu(u64::from(*servers)))])),
                    ]),
                );
            }
            _ => {}
        }
    }

    // Scheduler-epoch spans: each emitted epoch state holds until the
    // next emission (or end of log).
    for (i, (ts, launches, queued, running)) in epochs.iter().enumerate() {
        let end = epochs.get(i + 1).map(|e| e.0).unwrap_or(last_us);
        if end <= *ts {
            continue;
        }
        b.push(
            *ts,
            "X",
            obj(vec![
                ("name", vs("epoch")),
                ("cat", vs("scheduler")),
                ("ph", vs("X")),
                ("ts", vu(*ts)),
                ("dur", vu(end - ts)),
                ("pid", vu(PID_SCHED)),
                ("tid", vu(1)),
                (
                    "args",
                    obj(vec![
                        ("launches", vu(u64::from(*launches))),
                        ("queued", vu(u64::from(*queued))),
                        ("running", vu(u64::from(*running))),
                    ]),
                ),
            ]),
        );
    }

    b
}

/// Exports the standard Chrome trace plus Perfetto flow events derived
/// from the provenance graph.
///
/// Each `Preemption` edge becomes a `preempt-flow` arrow from the
/// scheduler track (where the victim ranking ran) to the victim's job
/// track at the preemption instant; each `LoanEnabled` edge becomes a
/// `loan-flow` arrow to the launch or scale-out the loan enabled. Flow
/// ids are assigned in deterministic edge order, so same-seed exports
/// are byte-identical.
pub fn export_provenance_trace(events: &[TimedEvent]) -> String {
    let mut b = build_trace(events);
    let graph = build_provenance(events);
    let mut flow_id = 0u64;
    for e in graph.edges() {
        let name = match e.kind {
            EdgeKind::Preemption => "preempt-flow",
            EdgeKind::LoanEnabled => "loan-flow",
            _ => continue,
        };
        let (Some(from), Some(to)) = (graph.node(e.from), graph.node(e.to)) else {
            continue;
        };
        let Some(job) = to.job else { continue };
        flow_id += 1;
        b.push(
            from.time_ms * 1000,
            "s",
            obj(vec![
                ("name", vs(name)),
                ("cat", vs("provenance")),
                ("ph", vs("s")),
                ("id", vu(flow_id)),
                ("ts", vu(from.time_ms * 1000)),
                ("pid", vu(PID_SCHED)),
                ("tid", vu(1)),
                ("args", obj(vec![("decision", vu(e.from))])),
            ]),
        );
        b.push(
            to.time_ms * 1000,
            "f",
            obj(vec![
                ("name", vs(name)),
                ("cat", vs("provenance")),
                ("ph", vs("f")),
                ("bp", vs("e")),
                ("id", vu(flow_id)),
                ("ts", vu(to.time_ms * 1000)),
                ("pid", vu(PID_JOBS)),
                ("tid", vu(job + 1)),
                ("args", obj(vec![("decision", vu(e.from))])),
            ]),
        );
    }
    b.render()
}

/// Summary statistics from a validated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Distinct `(pid, tid)` tracks.
    pub tracks: usize,
    /// Matched `B`/`E` span pairs.
    pub span_pairs: usize,
    /// Flow events (`s`/`f` phases).
    pub flow_events: usize,
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(u) => Some(*u),
        Value::Int(i) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

fn field_u64(ev: &Value, key: &str) -> Result<u64, String> {
    ev.get(key)
        .and_then(as_u64)
        .ok_or_else(|| format!("missing or non-integer `{key}`"))
}

/// Minimal `trace_event` schema check: well-formed JSON with a
/// `traceEvents` array, every event carrying `name`/`ph`/`ts`/`pid`/
/// `tid`, `ts` monotone (non-decreasing) per `(pid, tid)` track in file
/// order, `B`/`E` events forming matched, name-consistent pairs, and
/// flow events (`s`/`f`) carrying the mandatory `id`.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceStats, String> {
    let root: Value =
        serde_json::from_str(text).map_err(|e| format!("malformed JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("top-level `traceEvents` array missing")?;
    let mut last_ts: std::collections::HashMap<(u64, u64), u64> =
        std::collections::HashMap::new();
    let mut stacks: std::collections::HashMap<(u64, u64), Vec<String>> =
        std::collections::HashMap::new();
    let mut span_pairs = 0usize;
    let mut flow_events = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let err = |msg: String| format!("event {i}: {msg}");
        if !matches!(ev, Value::Object(_)) {
            return Err(err("not an object".into()));
        }
        let name = ev
            .get("name")
            .and_then(as_str)
            .ok_or_else(|| err("missing `name`".into()))?;
        let ph = ev
            .get("ph")
            .and_then(as_str)
            .ok_or_else(|| err("missing `ph`".into()))?;
        if !matches!(ph, "B" | "E" | "X" | "i" | "C" | "M" | "s" | "f") {
            return Err(err(format!("unsupported phase {ph:?}")));
        }
        let ts = field_u64(ev, "ts").map_err(err)?;
        let pid = field_u64(ev, "pid").map_err(err)?;
        let tid = field_u64(ev, "tid").map_err(err)?;
        if ph == "X" {
            field_u64(ev, "dur").map_err(err)?;
        }
        if matches!(ph, "s" | "f") {
            field_u64(ev, "id").map_err(err)?;
            flow_events += 1;
        }
        let track = (pid, tid);
        if let Some(prev) = last_ts.get(&track) {
            if ts < *prev {
                return Err(err(format!(
                    "ts {ts} goes backwards on track pid={pid} tid={tid} (prev {prev})"
                )));
            }
        }
        last_ts.insert(track, ts);
        match ph {
            "B" => stacks.entry(track).or_default().push(name.to_string()),
            "E" => {
                let open = stacks
                    .entry(track)
                    .or_default()
                    .pop()
                    .ok_or_else(|| err(format!("E {name:?} with no open B on track")))?;
                if open != name {
                    return Err(err(format!("E {name:?} closes B {open:?}")));
                }
                span_pairs += 1;
            }
            _ => {}
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "unclosed B {open:?} on track pid={pid} tid={tid}"
            ));
        }
    }
    Ok(ChromeTraceStats {
        events: events.len(),
        tracks: last_ts.len(),
        span_pairs,
        flow_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> Vec<TimedEvent> {
        let raw = vec![
            (0, SchedEvent::JobAdmit { job: 0 }),
            (
                0,
                SchedEvent::LoanGrant {
                    servers: vec![4, 5],
                },
            ),
            (
                1_000,
                SchedEvent::JobStart {
                    job: 0,
                    workers: 2,
                    on_loan: true,
                    servers: vec![4, 5],
                },
            ),
            (
                1_000,
                SchedEvent::SchedulerEpoch {
                    launches: 1,
                    queued: 0,
                    running: 1,
                },
            ),
            (
                5_000,
                SchedEvent::ReclaimGrant {
                    demanded: 2,
                    returned_flex: 0,
                    returned_idle: 0,
                    returned_preempt: 2,
                    preempted: vec![0],
                    collateral_gpus: 0,
                },
            ),
            (
                5_000,
                SchedEvent::Audit(crate::audit::AuditRecord::ReclaimChoice {
                    need: 2,
                    candidates: vec![],
                    chosen: 4,
                    preempted: vec![0],
                    cause: Some(crate::attribution::DelayCause::ReclaimPreemption),
                }),
            ),
            (
                5_000,
                SchedEvent::JobPreempt {
                    job: 0,
                    checkpointed: false,
                    // seq of the ReclaimChoice audit above (enumerate order).
                    decision: Some(5),
                },
            ),
            (
                8_000,
                SchedEvent::JobStart {
                    job: 0,
                    workers: 2,
                    on_loan: false,
                    servers: vec![0, 1],
                },
            ),
            (
                12_000,
                SchedEvent::JobComplete {
                    job: 0,
                    jct_s: 12.0,
                },
            ),
        ];
        raw.into_iter()
            .enumerate()
            .map(|(i, (t, e))| TimedEvent {
                time_ms: t,
                seq: i as u64,
                event: e,
            })
            .collect()
    }

    #[test]
    fn exported_trace_passes_schema_check_and_is_deterministic() {
        let log = sample_log();
        let trace = export_chrome_trace(&log);
        let stats = validate_chrome_trace(&trace).expect("valid trace");
        assert!(stats.events > 0);
        assert!(stats.span_pairs >= 4, "lifeline spans present: {stats:?}");
        assert!(stats.tracks >= 3);
        assert!(trace.contains("reclaim-preemption"));
        assert!(trace.contains("loaned-servers"));
        assert_eq!(trace, export_chrome_trace(&log), "byte-identical re-export");
    }

    #[test]
    fn validator_rejects_broken_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        // Unmatched B.
        let t = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(t).unwrap_err().contains("unclosed B"));
        // Backwards ts on one track.
        let t = r#"{"traceEvents":[
            {"name":"a","ph":"i","ts":10,"pid":1,"tid":1},
            {"name":"b","ph":"i","ts":5,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(t)
            .unwrap_err()
            .contains("goes backwards"));
        // Mismatched B/E names.
        let t = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
            {"name":"b","ph":"E","ts":2,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(t).unwrap_err().contains("closes B"));
        // Different tracks may interleave freely.
        let t = r#"{"traceEvents":[
            {"name":"a","ph":"i","ts":10,"pid":1,"tid":1},
            {"name":"b","ph":"i","ts":5,"pid":1,"tid":2}
        ]}"#;
        assert!(validate_chrome_trace(t).is_ok());
        // Flow events need an id.
        let t = r#"{"traceEvents":[
            {"name":"a","ph":"s","ts":1,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(t).unwrap_err().contains("id"));
        let t = r#"{"traceEvents":[
            {"name":"a","ph":"s","ts":1,"pid":1,"tid":1,"id":7},
            {"name":"a","ph":"f","bp":"e","ts":2,"pid":1,"tid":2,"id":7}
        ]}"#;
        assert!(validate_chrome_trace(t).is_ok());
    }

    #[test]
    fn provenance_trace_adds_flow_arrows_and_validates() {
        let log = sample_log();
        let trace = export_provenance_trace(&log);
        validate_chrome_trace(&trace).expect("valid trace");
        assert!(trace.contains("preempt-flow"), "{trace}");
        assert!(trace.contains("loan-flow"), "{trace}");
        assert!(trace.contains("\"ph\":\"s\""));
        assert!(trace.contains("\"ph\":\"f\""));
        assert_eq!(
            trace,
            export_provenance_trace(&log),
            "byte-identical re-export"
        );
        // The plain exporter stays flow-free.
        assert!(!export_chrome_trace(&log).contains("\"ph\":\"s\""));
    }
}
