//! Prometheus text exposition (version 0.0.4) for the telemetry store
//! and the metrics registry.
//!
//! This is the scrape surface a future `serve` daemon will expose; for
//! now `lyra-bench prom` renders one exposition snapshot at end of run.
//! Rendering is a pure function of the inputs — names in sorted order,
//! values through the same deterministic formatter as the CSV export —
//! so same-seed runs produce byte-identical expositions and the golden
//! gate can pin them.
//!
//! Metric-name mapping: Lyra's dotted names (`queue.depth`) become
//! Prometheus-safe underscored names under the `lyra_` namespace
//! (`lyra_queue_depth`).

use crate::registry::MetricsSnapshot;
use crate::timeseries::{format_value, Log2Histogram, Telemetry};

/// Maps a dotted Lyra metric name to a Prometheus metric name.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("lyra_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn push_metric(out: &mut String, name: &str, kind: &str, value: &str) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
    out.push_str(name);
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn push_histogram(out: &mut String, name: &str, bounds: &[f64], counts: &[u64], sum: f64, count: u64) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push_str(" histogram\n");
    let mut cumulative = 0u64;
    for (i, b) in bounds.iter().enumerate() {
        cumulative += counts[i];
        out.push_str(name);
        out.push_str("_bucket{le=\"");
        out.push_str(&format_value(*b));
        out.push_str("\"} ");
        out.push_str(&cumulative.to_string());
        out.push('\n');
    }
    cumulative += counts.last().copied().unwrap_or(0);
    out.push_str(name);
    out.push_str("_bucket{le=\"+Inf\"} ");
    out.push_str(&cumulative.to_string());
    out.push('\n');
    out.push_str(name);
    out.push_str("_sum ");
    out.push_str(&format_value(sum));
    out.push('\n');
    out.push_str(name);
    out.push_str("_count ");
    out.push_str(&count.to_string());
    out.push('\n');
}

fn push_log2_histogram(out: &mut String, name: &str, h: &Log2Histogram) {
    push_histogram(out, name, &h.bounds, &h.counts, h.sum, h.count);
}

/// Renders a full Prometheus text exposition from the telemetry store
/// (latest value of every series + the epoch histograms) and,
/// optionally, a registry snapshot (cumulative counters, gauges and
/// fixed-bucket histograms).
pub fn render_prometheus(telemetry: &Telemetry, registry: Option<&MetricsSnapshot>) -> String {
    let mut out = String::new();

    // Telemetry gauge series: latest retained value of each.
    for (name, series) in telemetry.iter() {
        if let Some(p) = series.last() {
            push_metric(&mut out, &prom_name(name), "gauge", &format_value(p.value));
        }
    }
    push_metric(
        &mut out,
        "lyra_telemetry_epochs_total",
        "counter",
        &telemetry.epochs.to_string(),
    );
    push_log2_histogram(&mut out, "lyra_epoch_span_ms", &telemetry.epoch_span_ms);
    push_log2_histogram(
        &mut out,
        "lyra_decision_latency_ms",
        &telemetry.decision_latency_ms,
    );

    if let Some(snap) = registry {
        for (name, value) in &snap.counters {
            push_metric(
                &mut out,
                &format!("{}_total", prom_name(name)),
                "counter",
                &value.to_string(),
            );
        }
        for (name, value) in &snap.gauges {
            push_metric(&mut out, &prom_name(name), "gauge", &format_value(*value));
        }
        for (name, h) in &snap.histograms {
            push_histogram(&mut out, &prom_name(name), &h.bounds, &h.counts, h.sum, h.count);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn names_are_prometheus_safe() {
        assert_eq!(prom_name("queue.depth"), "lyra_queue_depth");
        assert_eq!(prom_name("util.on-loan"), "lyra_util_on_loan");
    }

    #[test]
    fn exposition_renders_gauges_and_histograms() {
        let mut t = Telemetry::new(8);
        t.begin_epoch(0);
        t.sample_gauge("queue.depth", 0, 3.0);
        t.begin_epoch(30_000);
        t.sample_gauge("queue.depth", 30_000, 5.0);
        let text = render_prometheus(&t, None);
        assert!(text.contains("# TYPE lyra_queue_depth gauge\nlyra_queue_depth 5\n"));
        assert!(text.contains("lyra_telemetry_epochs_total 2"));
        assert!(text.contains("lyra_epoch_span_ms_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lyra_epoch_span_ms_sum 30000"));
        assert!(text.contains("lyra_epoch_span_ms_count 1"));
    }

    #[test]
    fn registry_snapshot_appends_counters() {
        let t = Telemetry::new(8);
        let mut reg = MetricsRegistry::new();
        reg.counter_add("sim.jobs.completed", 7);
        reg.gauge_set("cluster.loaned.servers", 2.0);
        let text = render_prometheus(&t, Some(&reg.snapshot(0)));
        assert!(text.contains("lyra_sim_jobs_completed_total 7"));
        assert!(text.contains("lyra_cluster_loaned_servers 2"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut t = Telemetry::new(8);
        t.begin_epoch(0);
        t.begin_epoch(1); // span 1 → first bucket (le=1)
        t.begin_epoch(3); // span 2 → second bucket (le=2)
        let text = render_prometheus(&t, None);
        assert!(text.contains("lyra_epoch_span_ms_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lyra_epoch_span_ms_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("lyra_epoch_span_ms_bucket{le=\"+Inf\"} 2\n"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut t = Telemetry::new(8);
        t.sample_gauge("b.two", 0, 2.0);
        t.sample_gauge("a.one", 0, 1.0);
        let a = render_prometheus(&t, None);
        let b = render_prometheus(&t, None);
        assert_eq!(a, b);
        // Sorted order: a.one before b.two.
        let ia = a.find("lyra_a_one").expect("a.one present");
        let ib = a.find("lyra_b_two").expect("b.two present");
        assert!(ia < ib);
    }
}
