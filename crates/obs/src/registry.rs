//! The metrics registry: counters, gauges and fixed-bucket histograms
//! registered by name, snapshotted per simulated hour.
//!
//! Naming convention: `<area>.<object>.<measure>`, dot-separated and
//! lowercase — e.g. `sim.jobs.completed`, `cluster.loaned.servers`,
//! `sim.queue.depth`. Counters are cumulative `u64`s, gauges are
//! instantaneous `f64`s, histograms accumulate observations into fixed
//! bucket bounds chosen at registration.
//!
//! All storage is `BTreeMap`-backed so snapshots serialise in a stable
//! order and same-seed runs produce identical time series.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Bucket bounds used when `histogram_observe` hits an unregistered
/// name: powers of two from 1 to 2^20, a generic log2 ladder wide
/// enough for milliseconds, seconds or counts. Histograms that need
/// tighter bounds must `histogram_register` before first observation.
pub const DEFAULT_HISTOGRAM_BOUNDS: &[f64] = &[
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
    16384.0, 32768.0, 65536.0, 131072.0, 262144.0, 524288.0, 1048576.0,
];

/// A fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Upper bounds of each bucket, ascending; an implicit final bucket
    /// catches everything above the last bound.
    pub bounds: Vec<f64>,
    /// Observation counts per bucket (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    fn new(bounds: Vec<f64>) -> Self {
        let buckets = bounds.len() + 1;
        HistogramSnapshot {
            bounds,
            counts: vec![0; buckets],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }
}

/// One hourly snapshot of every registered metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Simulated hour index (0 = first hour).
    pub hour: u64,
    /// Cumulative counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram state by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Counter / gauge / histogram registry.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name`, registering it at 0 first if
    /// unseen.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Increments the counter `name` by one.
    pub fn counter_inc(&mut self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if let Some(v) = self.gauges.get_mut(name) {
            *v = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Registers histogram `name` with the given ascending bucket
    /// bounds; a no-op if it already exists.
    pub fn histogram_register(&mut self, name: &str, bounds: &[f64]) {
        if !self.histograms.contains_key(name) {
            self.histograms
                .insert(name.to_string(), HistogramSnapshot::new(bounds.to_vec()));
        }
    }

    /// Records `value` into histogram `name`.
    ///
    /// An unregistered name is **auto-registered** with
    /// [`DEFAULT_HISTOGRAM_BOUNDS`] rather than silently dropped, so no
    /// observation is ever lost to a missing `histogram_register` call.
    /// Call `histogram_register` first when the metric needs bespoke
    /// bounds — registration wins only if it happens before the first
    /// observation (bounds are frozen once the histogram exists).
    pub fn histogram_observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| HistogramSnapshot::new(DEFAULT_HISTOGRAM_BOUNDS.to_vec()))
            .observe(value);
    }

    /// Snapshot of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Captures the full registry state for simulated hour `hour`.
    pub fn snapshot(&self, hour: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            hour,
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.counter("sim.jobs.completed"), 0);
        reg.counter_inc("sim.jobs.completed");
        reg.counter_add("sim.jobs.completed", 2);
        assert_eq!(reg.counter("sim.jobs.completed"), 3);
    }

    #[test]
    fn histogram_buckets_by_upper_bound_with_overflow() {
        let mut reg = MetricsRegistry::new();
        reg.histogram_register("sim.jct_s", &[60.0, 600.0]);
        for v in [30.0, 60.0, 100.0, 1e9] {
            reg.histogram_observe("sim.jct_s", v);
        }
        let h = reg.histogram("sim.jct_s").expect("registered");
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - (30.0 + 60.0 + 100.0 + 1e9)).abs() < 1e-6);
    }

    #[test]
    fn unregistered_histogram_auto_registers_with_default_bounds() {
        let mut reg = MetricsRegistry::new();
        reg.histogram_observe("sim.surprise_ms", 3.0);
        let h = reg.histogram("sim.surprise_ms").expect("auto-registered");
        assert_eq!(h.bounds, DEFAULT_HISTOGRAM_BOUNDS.to_vec());
        assert_eq!(h.count, 1);
        // Explicit registration before first observation still wins.
        let mut reg2 = MetricsRegistry::new();
        reg2.histogram_register("sim.tuned", &[0.5]);
        reg2.histogram_observe("sim.tuned", 0.1);
        assert_eq!(
            reg2.histogram("sim.tuned").expect("registered").bounds,
            vec![0.5]
        );
    }

    #[test]
    fn snapshot_serialises_deterministically() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("sim.queue.depth", 3.0);
        reg.counter_inc("cluster.loan.ops");
        reg.histogram_register("sim.queue_s", &[1.0]);
        let a = serde_json::to_string(&reg.snapshot(5)).expect("serialises");
        let b = serde_json::to_string(&reg.snapshot(5)).expect("serialises");
        assert_eq!(a, b);
        assert!(a.contains("\"hour\":5"));
    }
}
