//! The event log: JSON Lines into a ring buffer plus an optional file
//! sink.
//!
//! Events are serialised eagerly to one JSON line each. The ring buffer
//! keeps the most recent `capacity` lines for in-process inspection
//! (`--explain`, tests); the file sink, when configured, receives every
//! line. Serialisation is deterministic — map-free payloads, fields in
//! declaration order — so same-seed runs yield byte-identical logs.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::event::{SchedEvent, TimedEvent};

/// Ring-buffered JSONL event log with an optional file sink.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    ring: VecDeque<String>,
    sink: Option<BufWriter<File>>,
    sink_path: Option<PathBuf>,
    seq: u64,
    emitted: u64,
    dropped: u64,
}

impl EventLog {
    /// Creates a log keeping at most `capacity` lines in memory.
    pub fn new(capacity: usize) -> Self {
        EventLog {
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            sink: None,
            sink_path: None,
            seq: 0,
            emitted: 0,
            dropped: 0,
        }
    }

    /// Attaches a file sink; every subsequent line is also appended to
    /// `path` (truncating any existing file).
    pub fn with_sink(mut self, path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        self.sink = Some(BufWriter::new(file));
        self.sink_path = Some(path.to_path_buf());
        Ok(self)
    }

    /// Path of the file sink, if one is attached.
    pub fn sink_path(&self) -> Option<&Path> {
        self.sink_path.as_deref()
    }

    /// Stamps `event` with `time_ms` and the next sequence number, then
    /// appends it to the ring (and sink, if any).
    pub fn emit(&mut self, time_ms: u64, event: SchedEvent) {
        let timed = TimedEvent {
            time_ms,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        let line = serde_json::to_string(&timed)
            .expect("event serialisation is infallible for in-tree types");
        self.push_line(line);
    }

    fn push_line(&mut self, line: String) {
        if let Some(sink) = &mut self.sink {
            // A full disk shouldn't kill a simulation; drop the sink and
            // keep the ring.
            if writeln!(sink, "{line}").is_err() {
                self.sink = None;
            }
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(line);
        self.emitted += 1;
    }

    /// Lines currently held in the ring, oldest first.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.ring.iter().map(String::as_str)
    }

    /// The ring contents joined into one JSONL string (trailing
    /// newline included when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.ring {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Total events emitted over the log's lifetime.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Events evicted from the ring to honour the capacity bound (they
    /// were still written to the sink, if one is attached).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Flushes the file sink, if any.
    pub fn flush(&mut self) {
        if let Some(sink) = &mut self.sink {
            let _ = sink.flush();
        }
    }
}

impl Drop for EventLog {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut log = EventLog::new(2);
        for id in 0..4u64 {
            log.emit(id * 1000, SchedEvent::JobAdmit { job: id });
        }
        assert_eq!(log.emitted(), 4);
        assert_eq!(log.dropped(), 2);
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\":2"));
        assert!(lines[1].contains("\"seq\":3"));
    }

    #[test]
    fn lines_round_trip_through_parse() {
        let mut log = EventLog::new(16);
        log.emit(
            500,
            SchedEvent::JobStart {
                job: 7,
                workers: 2,
                on_loan: true,
                servers: vec![1, 4],
            },
        );
        let events = crate::explain::parse_log(&log.to_jsonl()).expect("parses");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].time_ms, 500);
        assert_eq!(
            events[0].event,
            SchedEvent::JobStart {
                job: 7,
                workers: 2,
                on_loan: true,
                servers: vec![1, 4],
            }
        );
    }

    #[test]
    fn sink_receives_every_line_even_past_ring_capacity() {
        let dir = std::env::temp_dir().join("lyra-obs-test-sink");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.jsonl");
        {
            let mut log = EventLog::new(1).with_sink(&path).expect("sink");
            for id in 0..3u64 {
                log.emit(id, SchedEvent::JobAdmit { job: id });
            }
        }
        let contents = std::fs::read_to_string(&path).expect("read sink");
        assert_eq!(contents.lines().count(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
