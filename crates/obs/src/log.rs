//! The event log: JSON Lines into a ring buffer plus an optional file
//! sink.
//!
//! Events are serialised eagerly to one JSON line each. The ring buffer
//! keeps the most recent `capacity` lines for in-process inspection
//! (`--explain`, tests); the file sink, when configured, receives every
//! line. Serialisation is deterministic — map-free payloads, fields in
//! declaration order — so same-seed runs yield byte-identical logs.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::event::{SchedEvent, TimedEvent};

/// Serializable snapshot of an [`EventLog`] for checkpoint/restore.
///
/// Captures everything needed to resume emission exactly where it left
/// off: the ring contents, all counters, and the sink path (the sink
/// file itself is repaired and reopened in append mode on restore).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventLogState {
    /// Ring capacity (lines kept in memory).
    pub capacity: usize,
    /// Ring contents at capture time, oldest first.
    pub ring: Vec<String>,
    /// Next sequence number to stamp.
    pub seq: u64,
    /// Total lines emitted so far.
    pub emitted: u64,
    /// Lines evicted from the ring so far.
    pub dropped: u64,
    /// File sink path, if a sink was attached.
    pub sink_path: Option<PathBuf>,
}

/// Ring-buffered JSONL event log with an optional file sink.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    ring: VecDeque<String>,
    sink: Option<BufWriter<File>>,
    sink_path: Option<PathBuf>,
    seq: u64,
    emitted: u64,
    dropped: u64,
}

impl EventLog {
    /// Creates a log keeping at most `capacity` lines in memory.
    pub fn new(capacity: usize) -> Self {
        EventLog {
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            sink: None,
            sink_path: None,
            seq: 0,
            emitted: 0,
            dropped: 0,
        }
    }

    /// Attaches a file sink; every subsequent line is also appended to
    /// `path` (truncating any existing file).
    pub fn with_sink(mut self, path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        self.sink = Some(BufWriter::new(file));
        self.sink_path = Some(path.to_path_buf());
        Ok(self)
    }

    /// Path of the file sink, if one is attached.
    pub fn sink_path(&self) -> Option<&Path> {
        self.sink_path.as_deref()
    }

    /// Stamps `event` with `time_ms` and the next sequence number, then
    /// appends it to the ring (and sink, if any). Returns the sequence
    /// number assigned — the event's stable `DecisionId` for provenance
    /// tracking (persisted in the line itself and in checkpoints, so it
    /// survives log replay and crash/resume unchanged).
    pub fn emit(&mut self, time_ms: u64, event: SchedEvent) -> u64 {
        let seq = self.seq;
        let timed = TimedEvent {
            time_ms,
            seq,
            event,
        };
        self.seq += 1;
        let line = serde_json::to_string(&timed)
            .expect("event serialisation is infallible for in-tree types");
        self.push_line(line);
        seq
    }

    /// The sequence number the *next* emitted event will carry.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    fn push_line(&mut self, line: String) {
        if let Some(sink) = &mut self.sink {
            // A full disk shouldn't kill a simulation; drop the sink and
            // keep the ring.
            if writeln!(sink, "{line}").is_err() {
                self.sink = None;
            }
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(line);
        self.emitted += 1;
    }

    /// Lines currently held in the ring, oldest first.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.ring.iter().map(String::as_str)
    }

    /// The ring contents joined into one JSONL string (trailing
    /// newline included when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.ring {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Total events emitted over the log's lifetime.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Events evicted from the ring to honour the capacity bound (they
    /// were still written to the sink, if one is attached).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Flushes the file sink, if any.
    pub fn flush(&mut self) {
        if let Some(sink) = &mut self.sink {
            let _ = sink.flush();
        }
    }

    /// Captures the log's complete state for a checkpoint.
    ///
    /// Flushes the sink first so the file on disk holds every emitted
    /// line — the restore path can then repair any *externally* torn
    /// tail (a crash mid-append) by truncating to whole lines.
    pub fn capture_state(&mut self) -> EventLogState {
        self.flush();
        EventLogState {
            capacity: self.capacity,
            ring: self.ring.iter().cloned().collect(),
            seq: self.seq,
            emitted: self.emitted,
            dropped: self.dropped,
            sink_path: self.sink_path.clone(),
        }
    }

    /// Rebuilds a log from a captured state, repairing the sink file.
    ///
    /// The sink file is cut back to exactly `state.emitted` complete
    /// (newline-terminated) lines — dropping a torn final line from a
    /// crash mid-write, and any lines emitted after the checkpoint was
    /// taken — then reopened in *append* mode so resumed emission
    /// continues the same file. Fewer complete lines than `emitted`
    /// means unrecoverable data loss and is an error (never a silent
    /// partial restore).
    pub fn from_state(state: EventLogState) -> std::io::Result<Self> {
        let sink = match &state.sink_path {
            Some(path) => {
                let keep = repair_sink(path, state.emitted)?;
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(keep)?;
                let file = OpenOptions::new().append(true).open(path)?;
                Some(BufWriter::new(file))
            }
            None => None,
        };
        Ok(EventLog {
            capacity: state.capacity.max(1),
            ring: state.ring.into(),
            sink,
            sink_path: state.sink_path,
            seq: state.seq,
            emitted: state.emitted,
            dropped: state.dropped,
        })
    }
}

/// Byte offset after the first `emitted` newline-terminated lines of
/// the sink at `path`; errors if the file holds fewer complete lines.
fn repair_sink(path: &Path, emitted: u64) -> std::io::Result<u64> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && emitted == 0 => {
            File::create(path)?;
            Vec::new()
        }
        Err(e) => return Err(e),
    };
    let mut complete = 0u64;
    let mut offset = 0u64;
    for (i, b) in bytes.iter().enumerate() {
        if complete == emitted {
            break;
        }
        if *b == b'\n' {
            complete += 1;
            offset = i as u64 + 1;
        }
    }
    if complete < emitted {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "sink {} holds {complete} complete lines but the checkpoint \
                 recorded {emitted}: unrecoverable log loss",
                path.display()
            ),
        ));
    }
    if (bytes.len() as u64) > offset {
        eprintln!(
            "warning: sink {}: dropping {} bytes past the checkpointed log tail \
             (torn line or post-checkpoint emission)",
            path.display(),
            bytes.len() as u64 - offset
        );
    }
    Ok(offset)
}

impl Drop for EventLog {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut log = EventLog::new(2);
        for id in 0..4u64 {
            log.emit(id * 1000, SchedEvent::JobAdmit { job: id });
        }
        assert_eq!(log.emitted(), 4);
        assert_eq!(log.dropped(), 2);
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\":2"));
        assert!(lines[1].contains("\"seq\":3"));
    }

    #[test]
    fn lines_round_trip_through_parse() {
        let mut log = EventLog::new(16);
        log.emit(
            500,
            SchedEvent::JobStart {
                job: 7,
                workers: 2,
                on_loan: true,
                servers: vec![1, 4],
            },
        );
        let events = crate::explain::parse_log(&log.to_jsonl()).expect("parses");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].time_ms, 500);
        assert_eq!(
            events[0].event,
            SchedEvent::JobStart {
                job: 7,
                workers: 2,
                on_loan: true,
                servers: vec![1, 4],
            }
        );
    }

    #[test]
    fn state_round_trip_resumes_counters_and_ring() {
        let mut log = EventLog::new(2);
        for id in 0..3u64 {
            log.emit(id * 100, SchedEvent::JobAdmit { job: id });
        }
        let state = log.capture_state();
        let mut restored = EventLog::from_state(state).expect("restore");
        assert_eq!(restored.emitted(), 3);
        assert_eq!(restored.dropped(), 1);
        restored.emit(400, SchedEvent::JobAdmit { job: 9 });
        let lines: Vec<&str> = restored.lines().collect();
        assert!(lines.last().unwrap().contains("\"seq\":3"), "{lines:?}");
    }

    #[test]
    fn restore_repairs_torn_sink_tail_and_appends() {
        let dir = std::env::temp_dir().join("lyra-obs-test-torn");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.jsonl");
        let state = {
            let mut log = EventLog::new(16).with_sink(&path).expect("sink");
            for id in 0..3u64 {
                log.emit(id, SchedEvent::JobAdmit { job: id });
            }
            log.capture_state()
        };
        // Simulate a crash mid-append: a torn, newline-less extra line.
        {
            let mut f = OpenOptions::new().append(true).open(&path).expect("open");
            write!(f, "{{\"time_ms\":99,\"se").expect("tear");
        }
        let mut restored = EventLog::from_state(state).expect("restore");
        restored.emit(3, SchedEvent::JobAdmit { job: 3 });
        drop(restored);
        let contents = std::fs::read_to_string(&path).expect("read sink");
        assert_eq!(contents.lines().count(), 4, "torn tail dropped, new line appended");
        assert!(contents.ends_with('\n'));
        assert!(!contents.contains("\"se\n"), "no torn fragment survives");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restore_refuses_a_sink_missing_checkpointed_lines() {
        let dir = std::env::temp_dir().join("lyra-obs-test-lost");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.jsonl");
        let state = {
            let mut log = EventLog::new(16).with_sink(&path).expect("sink");
            for id in 0..3u64 {
                log.emit(id, SchedEvent::JobAdmit { job: id });
            }
            log.capture_state()
        };
        std::fs::write(&path, "{\"one\":1}\n").expect("clobber");
        assert!(EventLog::from_state(state).is_err(), "lost lines must refuse");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sink_receives_every_line_even_past_ring_capacity() {
        let dir = std::env::temp_dir().join("lyra-obs-test-sink");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.jsonl");
        {
            let mut log = EventLog::new(1).with_sink(&path).expect("sink");
            for id in 0..3u64 {
                log.emit(id, SchedEvent::JobAdmit { job: id });
            }
        }
        let contents = std::fs::read_to_string(&path).expect("read sink");
        assert_eq!(contents.lines().count(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
