//! `--explain <job-id>`: reconstruct the causal chain for one job from
//! a recorded event log.
//!
//! The audit trail records the *inputs* of every decision (SJF keys,
//! MCKP values, placement costs, reclaim costs); this module replays a
//! JSONL event log and narrates every event and decision that touched
//! the requested job, in order.

use crate::event::{SchedEvent, TimedEvent};
use crate::audit::AuditRecord;

/// Parses a JSONL event log (as produced by
/// [`EventLog`](crate::log::EventLog)) back into timed events.
///
/// Returns `Err` with a description on the first malformed line — with
/// one deliberate exception: a malformed *final* line in a log that
/// does not end with a newline is a torn tail from a crash mid-write.
/// That line is skipped with a warning so an otherwise-intact log
/// replays cleanly after a crash; a malformed line anywhere else (or a
/// newline-terminated final line) stays a hard error, since it means
/// corruption rather than a cut.
pub fn parse_log(jsonl: &str) -> Result<Vec<TimedEvent>, String> {
    let torn_tail_possible = !jsonl.is_empty() && !jsonl.ends_with('\n');
    let total = jsonl.lines().count();
    let mut events = Vec::new();
    for (no, line) in jsonl.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match serde_json::from_str::<TimedEvent>(line) {
            Ok(ev) => events.push(ev),
            Err(e) if torn_tail_possible && no + 1 == total => {
                eprintln!(
                    "warning: skipping torn final log line {} (crash artifact): {e:?}",
                    no + 1
                );
            }
            Err(e) => return Err(format!("line {}: {e:?}", no + 1)),
        }
    }
    Ok(events)
}

fn stamp(time_ms: u64) -> String {
    format!("[t={:>9.1}s]", time_ms as f64 / 1000.0)
}

/// Narrates one audit record for `job`, returning `(collapse_key,
/// text)`. The key carries the decision *outcome* (its delay cause or
/// grant), so a deferred round never collapses into an admitted one.
fn audit_line(rec: &AuditRecord, job: u64) -> Option<(String, String)> {
    match rec {
        AuditRecord::Phase1Order {
            capacity_gpus,
            order,
        } => {
            let (rank, entry) = order
                .iter()
                .enumerate()
                .find(|(_, e)| e.job == job)?;
            let outcome = match entry.cause {
                Some(c) => c.label(),
                None if entry.admitted => "admitted",
                None => "deferred",
            };
            Some((
                format!("phase-1 ordering/{outcome}"),
                format!(
                    "phase-1 ordering: rank {}/{} (est running time {:.0}s, base {} GPUs, capacity {} GPUs) -> {}",
                    rank + 1,
                    order.len(),
                    entry.est_running_time_s,
                    entry.base_gpus,
                    capacity_gpus,
                    if entry.admitted { "admitted" } else { "deferred" },
                ),
            ))
        }
        AuditRecord::Phase2Mckp {
            capacity_gpus,
            groups,
            ..
        } => {
            let g = groups.iter().find(|g| g.job == job)?;
            let outcome = match g.cause {
                Some(c) => c.label(),
                None if g.chosen_extra > 0 => "granted",
                None => "kept-base",
            };
            Some((
                format!("phase-2 MCKP/{outcome}"),
                format!(
                    "phase-2 MCKP: {} flexible-demand options (JCT-reduction values {:?}) over {} leftover GPUs -> granted {} extra workers (value {:.1})",
                    g.values.len(),
                    g.values
                        .iter()
                        .map(|v| (v * 10.0).round() / 10.0)
                        .collect::<Vec<_>>(),
                    capacity_gpus,
                    g.chosen_extra,
                    g.chosen_value,
                ),
            ))
        }
        AuditRecord::PlacementDecision {
            job: j,
            role,
            gpus,
            chosen,
            chosen_free_gpus,
            alternatives,
        } if *j == job => {
            let alts: Vec<String> = alternatives
                .iter()
                .map(|a| format!("s{}(free {})", a.server, a.free_gpus))
                .collect();
            Some(match chosen {
                Some(server) => (
                    format!("placement/{role}/chosen"),
                    format!(
                        "placement ({role}, {gpus} GPUs): best-fit chose server {server} (free {chosen_free_gpus}); rejected [{}]",
                        alts.join(", ")
                    ),
                ),
                None => (
                    format!("placement/{role}/failed"),
                    format!(
                        "placement ({role}, {gpus} GPUs): FAILED; candidates [{}]",
                        alts.join(", ")
                    ),
                ),
            })
        }
        AuditRecord::ReclaimChoice {
            need,
            candidates,
            chosen,
            preempted,
            cause,
        } if preempted.contains(&job) => {
            let costs: Vec<String> = candidates
                .iter()
                .map(|c| format!("s{}: cost {:.3} (+{} collateral)", c.server, c.cost, c.collateral_gpus))
                .collect();
            let outcome = cause.map(|c| c.label()).unwrap_or("no-preempt");
            Some((
                format!("reclaim cost search/{outcome}"),
                format!(
                    "reclaim cost search (need {need} servers): picked server {chosen} as cheapest of [{}] -> this job preempted",
                    costs.join("; ")
                ),
            ))
        }
        _ => None,
    }
}

/// Narrates the full causal chain for `job` from a recorded run.
///
/// Returns a multi-line human-readable report; the final line counts
/// the events that touched the job (0 lines of history means the id
/// never appeared in the log). Long runs of the same decision are
/// collapsed to their first and last occurrence; the collapse key is
/// (decision kind, cause/outcome), so a stretch of `gpu-scarcity`
/// deferrals never swallows the admission that ended it.
pub fn explain_job(events: &[TimedEvent], job: u64) -> String {
    let mut lines: Vec<(u64, String, String)> = Vec::new();
    for ev in events {
        let line = match &ev.event {
            SchedEvent::JobAdmit { job: j } if *j == job => Some((
                "admit".to_string(),
                "admitted to the pending queue".to_string(),
            )),
            SchedEvent::JobStart {
                job: j,
                workers,
                on_loan,
                servers,
            } if *j == job => Some((
                "launch".to_string(),
                format!(
                    "launched with {workers} workers on servers {servers:?}{}",
                    if *on_loan { " (partly on loaned capacity)" } else { "" }
                ),
            )),
            SchedEvent::JobScaleOut {
                job: j,
                delta,
                workers,
                on_loan,
                ..
            } if *j == job => Some((
                "scale-out".to_string(),
                format!(
                    "scaled out +{delta} -> {workers} workers{}",
                    if *on_loan { " (partly on loaned capacity)" } else { "" }
                ),
            )),
            SchedEvent::JobScaleIn {
                job: j,
                delta,
                workers,
            } if *j == job => Some((
                "scale-in".to_string(),
                format!("scaled in -{delta} -> {workers} workers"),
            )),
            SchedEvent::ControllerRescale {
                job: j,
                workers,
                pause_s,
            } if *j == job => Some((
                "rendezvous".to_string(),
                format!(
                    "elastic controller rendezvous -> {workers} workers ({pause_s:.0}s pause)"
                ),
            )),
            SchedEvent::FlexRelease {
                job: j,
                server,
                workers,
            } if *j == job => Some((
                "flex-release".to_string(),
                format!(
                    "released {workers} flexible workers from server {server} (reclaim pressure)"
                ),
            )),
            SchedEvent::JobStall {
                job: j,
                cause,
                pause_ms,
            } if *j == job => Some((
                format!("stall/{}", cause.label()),
                format!(
                    "stalled {:.1}s ({})",
                    *pause_ms as f64 / 1000.0,
                    cause.label()
                ),
            )),
            SchedEvent::JobStraggle { job: j, factor } if *j == job => Some((
                format!(
                    "straggle/{}",
                    if *factor < 1.0 { "slow" } else { "recovered" }
                ),
                if *factor < 1.0 {
                    format!("straggling at {factor:.2}x nominal speed")
                } else {
                    "straggler episode ended (back to nominal speed)".to_string()
                },
            )),
            SchedEvent::JobPreempt {
                job: j,
                checkpointed,
                decision,
            } if *j == job => Some((
                "preempt".to_string(),
                format!(
                    "PREEMPTED{}{}",
                    if *checkpointed {
                        " (will resume from checkpoint)"
                    } else {
                        " (restarts from scratch)"
                    },
                    match decision {
                        Some(d) => format!(" by decision #{d}"),
                        None => String::new(),
                    }
                ),
            )),
            SchedEvent::JobComplete { job: j, jct_s } if *j == job => Some((
                "complete".to_string(),
                format!("completed (JCT {jct_s:.0}s)"),
            )),
            SchedEvent::ReclaimGrant {
                demanded,
                preempted,
                ..
            } if preempted.contains(&job) => Some((
                "reclaim-hit".to_string(),
                format!("reclaim of {demanded} servers preempted this job"),
            )),
            SchedEvent::Fault { kind, target } if *target == job => {
                Some((format!("fault/{kind}"), format!("fault: {kind}")))
            }
            SchedEvent::Audit(rec) => audit_line(rec, job),
            _ => None,
        };
        if let Some((key, text)) = line {
            lines.push((ev.time_ms, key, text));
        }
    }
    let mut out = format!("decision chain for job {job}\n");
    let mut i = 0;
    while i < lines.len() {
        let kind = &lines[i].1;
        let mut j = i + 1;
        while j < lines.len() && lines[j].1 == *kind {
            j += 1;
        }
        out.push_str(&format!("  {} {}\n", stamp(lines[i].0), lines[i].2));
        if j - i > 2 {
            let n = j - i - 2;
            let noun = if n == 1 { "decision" } else { "decisions" };
            out.push_str(&format!("  ... ({n} similar {noun} elided)\n"));
        }
        if j - i > 1 {
            let (t, _, text) = &lines[j - 1];
            out.push_str(&format!("  {} {text}\n", stamp(*t)));
        }
        i = j;
    }
    out.push_str(&format!("{} events touched job {job}\n", lines.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{Phase1Entry, ReclaimCandidate};
    use crate::log::EventLog;

    #[test]
    fn byte_chopped_final_line_is_skipped_not_fatal() {
        let mut log = EventLog::new(16);
        for id in 0..3u64 {
            log.emit(id * 1000, SchedEvent::JobAdmit { job: id });
        }
        let jsonl = log.to_jsonl();
        // Chop the log mid-way through its final line, as a crash
        // mid-append would: every complete line parses, the torn tail
        // is skipped with a warning.
        let chopped = &jsonl[..jsonl.len() - 7];
        assert!(!chopped.ends_with('\n'));
        let events = parse_log(chopped).expect("torn tail is recoverable");
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].event, SchedEvent::JobAdmit { job: 1 });
    }

    #[test]
    fn mid_file_corruption_stays_a_hard_error() {
        let mut log = EventLog::new(16);
        for id in 0..3u64 {
            log.emit(id * 1000, SchedEvent::JobAdmit { job: id });
        }
        let jsonl = log.to_jsonl();
        let corrupted = jsonl.replacen("JobAdmit", "JobAdmi", 1);
        assert!(parse_log(&corrupted).is_err(), "mid-file corruption must fail");
        // A malformed final line that IS newline-terminated is
        // corruption too, not a torn tail.
        let mut lines: Vec<&str> = jsonl.lines().collect();
        let bad = format!("{}garbage", lines.pop().unwrap());
        let rebuilt = format!("{}\n{bad}\n", lines.join("\n"));
        assert!(parse_log(&rebuilt).is_err(), "terminated garbage must fail");
    }

    #[test]
    fn explain_reconstructs_a_preemption_chain() {
        let mut log = EventLog::new(64);
        log.emit(0, SchedEvent::JobAdmit { job: 42 });
        log.emit(
            60_000,
            SchedEvent::Audit(AuditRecord::Phase1Order {
                capacity_gpus: 16,
                order: vec![Phase1Entry {
                    job: 42,
                    est_running_time_s: 3600.0,
                    base_gpus: 8,
                    admitted: true,
                    cause: None,
                }],
            }),
        );
        log.emit(
            60_000,
            SchedEvent::JobStart {
                job: 42,
                workers: 2,
                on_loan: true,
                servers: vec![3, 9],
            },
        );
        log.emit(
            7_200_000,
            SchedEvent::Audit(AuditRecord::ReclaimChoice {
                need: 1,
                candidates: vec![ReclaimCandidate {
                    server: 9,
                    cost: 0.5,
                    collateral_gpus: 2,
                }],
                chosen: 9,
                preempted: vec![42],
                cause: Some(crate::attribution::DelayCause::ReclaimPreemption),
            }),
        );
        log.emit(
            7_200_000,
            SchedEvent::JobPreempt {
                job: 42,
                checkpointed: false,
                decision: None,
            },
        );

        let events = parse_log(&log.to_jsonl()).expect("parses");
        let text = explain_job(&events, 42);
        assert!(text.contains("admitted"));
        assert!(text.contains("rank 1/1"));
        assert!(text.contains("launched with 2 workers"));
        assert!(text.contains("picked server 9"));
        assert!(text.contains("PREEMPTED"));
        assert!(text.contains("5 events touched job 42"));
        // A job that never appears yields an empty chain.
        assert!(explain_job(&events, 7).contains("0 events touched job 7"));
    }

    #[test]
    fn explain_collapses_repeated_decisions() {
        let mut log = EventLog::new(64);
        for tick in 0..5u64 {
            log.emit(
                tick * 60_000,
                SchedEvent::Audit(AuditRecord::Phase2Mckp {
                    capacity_gpus: 8,
                    groups: vec![crate::audit::MckpGroupAudit {
                        job: 1,
                        values: vec![100.0 - tick as f64],
                        chosen_extra: 0,
                        chosen_value: 0.0,
                        cause: Some(crate::attribution::DelayCause::MckpDenial),
                    }],
                    total_value: 0.0,
                    total_weight: 0,
                }),
            );
        }
        let events = parse_log(&log.to_jsonl()).expect("parses");
        let text = explain_job(&events, 1);
        // First + elision note + last, not five near-identical lines.
        assert_eq!(text.matches("phase-2 MCKP").count(), 2);
        assert!(text.contains("(3 similar decisions elided)"));
        assert!(text.contains("5 events touched job 1"));
    }

    #[test]
    fn explain_never_collapses_distinct_causes() {
        // Three gpu-scarcity deferrals followed by an admission: the
        // run-length collapse must break at the cause change instead of
        // swallowing the admission into the deferral run.
        let mut log = EventLog::new(64);
        for tick in 0..4u64 {
            let admitted = tick == 3;
            log.emit(
                tick * 60_000,
                SchedEvent::Audit(AuditRecord::Phase1Order {
                    capacity_gpus: 0,
                    order: vec![Phase1Entry {
                        job: 5,
                        est_running_time_s: 100.0,
                        base_gpus: 8,
                        admitted,
                        cause: (!admitted)
                            .then_some(crate::attribution::DelayCause::GpuScarcity),
                    }],
                }),
            );
        }
        let events = parse_log(&log.to_jsonl()).expect("parses");
        let text = explain_job(&events, 5);
        assert!(
            text.contains("-> admitted"),
            "the admitted round must survive collapsing:\n{text}"
        );
        assert_eq!(
            text.matches("-> deferred").count(),
            2,
            "deferral run keeps first and last:\n{text}"
        );
    }
}
