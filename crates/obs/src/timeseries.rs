//! Deterministic, bounded-memory time series for scheduler health.
//!
//! The simulator samples a fixed set of gauges once per scheduler epoch
//! (queue depth, utilization split, loaned capacity, reclaim backlog,
//! fragmentation, …) into [`RingSeries`] — fixed-capacity series with
//! *deterministic decimation*: when a series fills, every other retained
//! point is dropped and the sampling stride doubles. The retained point
//! set is a pure function of the sample sequence, so same-seed runs
//! export byte-identical series, and memory stays bounded no matter how
//! long the run is (1M-job scale included).
//!
//! Two fixed log2-bucket histograms ride along — simulated epoch span
//! and modelled decision latency — with bucket bounds frozen at
//! construction so golden gates can pin exported bytes. Wall-clock
//! readings never enter this module (the span profiler owns wall-clock);
//! every recorded quantity is simulated or modelled.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Default per-series point capacity. At one sample per 30-second epoch
/// this holds ~4 hours at full rate, a week at stride 64, and years at
/// the strides a 1M-job run decimates to — all in ≤ `cap` points.
pub const DEFAULT_SERIES_CAPACITY: usize = 512;

/// One retained sample: simulated time and gauge value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Simulated time of the sample, milliseconds.
    pub t_ms: u64,
    /// Gauge value at that instant.
    pub value: f64,
}

/// A fixed-capacity time series with deterministic stride decimation.
///
/// Samples are *subsampled*, not averaged: every `stride`-th offered
/// sample is retained point-in-time, the rest are discarded. When the
/// buffer reaches capacity, every other retained point is dropped and
/// the stride doubles. Both rules depend only on the monotonic sample
/// index, never on wall-clock or allocation state, so the retained set
/// is reproducible byte-for-byte across same-seed runs and across a
/// checkpoint/restore boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingSeries {
    /// Maximum retained points; decimation halves the buffer at this
    /// threshold, so `len()` stays within `cap/2..=cap`.
    cap: usize,
    /// Current sampling stride: a sample is retained iff its index is a
    /// multiple of `stride`. Doubles at each decimation.
    stride: u64,
    /// Monotonic count of samples *offered* (retained or not).
    offered: u64,
    /// Retained points, oldest first.
    points: Vec<SeriesPoint>,
}

impl RingSeries {
    /// Creates an empty series retaining at most `cap` points
    /// (minimum 2, so decimation always makes progress).
    pub fn new(cap: usize) -> Self {
        RingSeries {
            cap: cap.max(2),
            stride: 1,
            offered: 0,
            points: Vec::new(),
        }
    }

    /// Offers one sample. Retained iff the sample's monotonic index is a
    /// multiple of the current stride; triggers decimation when the
    /// buffer is full.
    pub fn record(&mut self, t_ms: u64, value: f64) {
        if self.offered.is_multiple_of(self.stride) {
            if self.points.len() == self.cap {
                // Keep every other point (even offsets) and double the
                // stride: pure function of the index sequence.
                let mut i = 0;
                self.points.retain(|_| {
                    let keep = i % 2 == 0;
                    i += 1;
                    keep
                });
                self.stride *= 2;
            }
            // The surviving index grid after decimation is multiples of
            // the *new* stride; only record if this index still lands
            // on it (it may not, immediately after doubling).
            if self.offered.is_multiple_of(self.stride) {
                self.points.push(SeriesPoint { t_ms, value });
            }
        }
        self.offered += 1;
    }

    /// Retained points, oldest first.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points are retained yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total samples offered (retained or decimated away).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Current decimation stride.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The most recently retained point, if any.
    pub fn last(&self) -> Option<SeriesPoint> {
        self.points.last().copied()
    }
}

/// A histogram with fixed power-of-two bucket bounds.
///
/// Bounds are `2^min_exp ..= 2^max_exp` (inclusive), plus an implicit
/// overflow bucket; they are frozen at construction so exported bytes
/// are pinnable by the golden gate. Observations are `f64` but the
/// intended inputs are simulated/modelled quantities (milliseconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Log2Histogram {
    /// Ascending bucket upper bounds (powers of two).
    pub bounds: Vec<f64>,
    /// Counts per bucket; `bounds.len() + 1` entries, last = overflow.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Log2Histogram {
    /// Creates a histogram with bounds `2^min_exp ..= 2^max_exp`.
    pub fn new(min_exp: u32, max_exp: u32) -> Self {
        let bounds: Vec<f64> = (min_exp..=max_exp).map(|e| (1u64 << e) as f64).collect();
        let buckets = bounds.len() + 1;
        Log2Histogram {
            bounds,
            counts: vec![0; buckets],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }
}

/// The per-run telemetry store: named ring series plus the two fixed
/// epoch histograms.
///
/// Everything here is `serde`-serialisable and enters the engine
/// checkpoint, so a restored run continues sampling exactly where the
/// crashed run stopped and resumed exports stay byte-identical to an
/// uninterrupted run's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    /// Per-series retained-point capacity used for new series.
    pub capacity: usize,
    /// Scheduler epochs sampled so far.
    pub epochs: u64,
    /// Named gauge series, in stable (sorted) order.
    series: BTreeMap<String, RingSeries>,
    /// Previous cumulative counter values backing the `rate.*` series.
    prev_counters: BTreeMap<String, u64>,
    /// Simulated time of the previous epoch sample, if any.
    last_sample_ms: Option<u64>,
    /// Simulated span between consecutive epoch samples, milliseconds.
    pub epoch_span_ms: Log2Histogram,
    /// Modelled scheduler decision latency per epoch, milliseconds.
    pub decision_latency_ms: Log2Histogram,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(DEFAULT_SERIES_CAPACITY)
    }
}

impl Telemetry {
    /// Creates an empty store whose series retain at most `capacity`
    /// points each.
    pub fn new(capacity: usize) -> Self {
        Telemetry {
            capacity,
            epochs: 0,
            series: BTreeMap::new(),
            prev_counters: BTreeMap::new(),
            last_sample_ms: None,
            // 1 ms .. ~17.9 min covers epoch spans from sub-second
            // control loops to hourly housekeeping ticks.
            epoch_span_ms: Log2Histogram::new(0, 20),
            // 1 ms .. ~65 s covers modelled control-plane latencies.
            decision_latency_ms: Log2Histogram::new(0, 16),
        }
    }

    /// Marks the start of one epoch sample at simulated `t_ms`:
    /// advances the epoch count and records the span since the previous
    /// sample into [`Telemetry::epoch_span_ms`].
    pub fn begin_epoch(&mut self, t_ms: u64) {
        if let Some(prev) = self.last_sample_ms {
            self.epoch_span_ms.observe(t_ms.saturating_sub(prev) as f64);
        }
        self.last_sample_ms = Some(t_ms);
        self.epochs += 1;
    }

    /// Samples gauge `name` at `t_ms`, creating the series on first use.
    pub fn sample_gauge(&mut self, name: &str, t_ms: u64, value: f64) {
        let cap = self.capacity;
        self.series
            .entry(name.to_string())
            .or_insert_with(|| RingSeries::new(cap))
            .record(t_ms, value);
    }

    /// Samples a per-epoch *rate* derived from a cumulative counter: the
    /// recorded value is the delta since this method last saw `name`.
    pub fn sample_rate(&mut self, name: &str, t_ms: u64, cumulative: u64) {
        let prev = self.prev_counters.insert(name.to_string(), cumulative);
        let delta = cumulative.saturating_sub(prev.unwrap_or(0));
        self.sample_gauge(name, t_ms, delta as f64);
    }

    /// Records one modelled decision latency observation, milliseconds.
    pub fn observe_decision_latency(&mut self, latency_ms: f64) {
        self.decision_latency_ms.observe(latency_ms);
    }

    /// Series names in stable sorted order.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(|s| s.as_str())
    }

    /// Looks up one series by name.
    pub fn series(&self, name: &str) -> Option<&RingSeries> {
        self.series.get(name)
    }

    /// The most recent retained value of series `name`, if any.
    pub fn latest(&self, name: &str) -> Option<f64> {
        self.series.get(name).and_then(|s| s.last()).map(|p| p.value)
    }

    /// Iterates `(name, series)` pairs in stable sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &RingSeries)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders all series as CSV in long format
    /// (`series,t_ms,value`), one row per retained point, series in
    /// sorted order — a pure function of the store's state.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,t_ms,value\n");
        for (name, series) in self.series.iter() {
            for p in series.points() {
                out.push_str(name);
                out.push(',');
                out.push_str(&p.t_ms.to_string());
                out.push(',');
                out.push_str(&format_value(p.value));
                out.push('\n');
            }
        }
        out
    }
}

/// Formats a gauge value for text export: integral values print without
/// a trailing `.0` so CSV/Prometheus bytes stay compact and stable.
pub fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_series_records_until_capacity() {
        let mut s = RingSeries::new(8);
        for i in 0..8u64 {
            s.record(i * 1000, i as f64);
        }
        assert_eq!(s.len(), 8);
        assert_eq!(s.stride(), 1);
        assert_eq!(s.points()[3], SeriesPoint { t_ms: 3000, value: 3.0 });
    }

    #[test]
    fn decimation_halves_and_doubles_stride() {
        let mut s = RingSeries::new(8);
        for i in 0..9u64 {
            s.record(i, i as f64);
        }
        // The 9th sample (index 8) triggers decimation: even-offset
        // survivors 0,2,4,6 remain, stride becomes 2, and index 8 lands
        // on the new grid so it is retained too.
        assert_eq!(s.stride(), 2);
        let kept: Vec<u64> = s.points().iter().map(|p| p.t_ms).collect();
        assert_eq!(kept, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn memory_stays_bounded_under_long_runs() {
        let mut s = RingSeries::new(16);
        for i in 0..1_000_000u64 {
            s.record(i, (i % 97) as f64);
        }
        assert!(s.len() <= 16, "len {} exceeds cap", s.len());
        assert!(s.len() >= 8, "decimation over-dropped to {}", s.len());
        assert_eq!(s.offered(), 1_000_000);
        // stride is a power of two by construction.
        assert_eq!(s.stride().count_ones(), 1);
    }

    #[test]
    fn retained_set_is_pure_function_of_samples() {
        let run = || {
            let mut s = RingSeries::new(32);
            for i in 0..12_345u64 {
                s.record(i * 7, (i as f64).sin());
            }
            s
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn log2_histogram_buckets_powers_of_two() {
        let mut h = Log2Histogram::new(0, 3); // bounds 1,2,4,8
        assert_eq!(h.bounds, vec![1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 2.0, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![1, 1, 1, 0, 1]);
        assert_eq!(h.count, 4);
    }

    #[test]
    fn rate_series_records_counter_deltas() {
        let mut t = Telemetry::new(16);
        t.sample_rate("rate.loans", 0, 3);
        t.sample_rate("rate.loans", 1000, 5);
        t.sample_rate("rate.loans", 2000, 5);
        let pts: Vec<f64> = t
            .series("rate.loans")
            .expect("series exists")
            .points()
            .iter()
            .map(|p| p.value)
            .collect();
        assert_eq!(pts, vec![3.0, 2.0, 0.0]);
    }

    #[test]
    fn epoch_span_histogram_sees_sample_gaps() {
        let mut t = Telemetry::new(16);
        t.begin_epoch(0);
        t.begin_epoch(30_000);
        t.begin_epoch(60_000);
        assert_eq!(t.epochs, 3);
        assert_eq!(t.epoch_span_ms.count, 2);
        assert!((t.epoch_span_ms.sum - 60_000.0).abs() < 1e-9);
    }

    #[test]
    fn csv_export_is_deterministic_and_sorted() {
        let mut t = Telemetry::new(8);
        t.sample_gauge("z.last", 0, 1.5);
        t.sample_gauge("a.first", 0, 2.0);
        t.sample_gauge("a.first", 1000, 3.0);
        let csv = t.to_csv();
        assert_eq!(
            csv,
            "series,t_ms,value\na.first,0,2\na.first,1000,3\nz.last,0,1.5\n"
        );
        assert_eq!(csv, t.to_csv());
    }

    #[test]
    fn serde_round_trip_preserves_state() {
        let mut t = Telemetry::new(8);
        for i in 0..100u64 {
            t.begin_epoch(i * 500);
            t.sample_gauge("queue.depth", i * 500, (i % 7) as f64);
            t.sample_rate("rate.preempt", i * 500, i / 3);
            t.observe_decision_latency(5.0);
        }
        let json = serde_json::to_string(&t).expect("serialises");
        let back: Telemetry = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(t, back);
        assert_eq!(t.to_csv(), back.to_csv());
    }
}
