//! Decision-provenance tracking: building the causal graph online from
//! the live event stream, or offline from any JSONL log, and rendering
//! it (`why`, `blame`).
//!
//! The tracker mirrors [`LifecycleTracker`](crate::LifecycleTracker):
//! it consumes `(time_ms, seq, &SchedEvent)` triples in emission order.
//! The engine feeds it as each event is emitted (online); offline,
//! [`build_provenance`] feeds a fresh tracker from a parsed log. Both
//! paths run the exact same transition function over the exact same
//! `(seq, event)` stream, so online ≡ offline holds by construction —
//! and is pinned by a differential test in `lyra-sim`.
//!
//! # DecisionId stability
//!
//! A [`DecisionId`] is the log sequence number of the event that
//! recorded the decision. Sequence numbers are stamped at emission,
//! serialised into every JSONL line, and carried through event-log
//! checkpoints, so the id of a decision is identical in a live run, a
//! log replay, and a crash/resume of the same seed.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::attribution::{fmt_s, DelayCause, JobAttribution};
use crate::audit::AuditRecord;
use crate::event::{SchedEvent, TimedEvent};
use crate::graph::{DecisionId, EdgeKind, NodeKind, ProvenanceGraph, ProvenanceNode};
use crate::lifecycle::attribute_log;

/// Builds a [`ProvenanceGraph`] incrementally from an event stream.
///
/// All state is serialisable: the observer checkpoints the tracker
/// alongside the event log, so a resumed run continues growing the
/// same graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceTracker {
    graph: ProvenanceGraph,
    /// Per-job tail of the admission→rank→verdict→placement chain: the
    /// decision the job's *next* chain event links back to.
    pending_chain: BTreeMap<u64, DecisionId>,
    /// Server → the `LoanGrant` decision that loaned it (latest wins).
    loaned_by: BTreeMap<u32, DecisionId>,
    /// The most recent `ReclaimDemand` decision; parent of every
    /// `ReclaimChoice` in the wave it triggered.
    pending_demand: Option<DecisionId>,
    /// Job → the `job_killed` fault awaiting its restart decision.
    pending_kill: BTreeMap<u64, DecisionId>,
    /// Job → the restart decision awaiting the job's re-placement.
    pending_restart: BTreeMap<u64, DecisionId>,
}

impl ProvenanceTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// The graph built so far.
    pub fn graph(&self) -> &ProvenanceGraph {
        &self.graph
    }

    /// Consumes the tracker, yielding the graph.
    pub fn into_graph(self) -> ProvenanceGraph {
        self.graph
    }

    fn add(&mut self, id: DecisionId, time_ms: u64, kind: NodeKind, job: Option<u64>) {
        self.graph.add_node(ProvenanceNode {
            id,
            time_ms,
            kind,
            job,
        });
    }

    /// Feeds one event. `seq` must be the log sequence number the event
    /// was (or will be) emitted under; events must arrive in `seq`
    /// order.
    pub fn observe(&mut self, time_ms: u64, seq: u64, event: &SchedEvent) {
        match event {
            SchedEvent::JobAdmit { job } => {
                self.add(seq, time_ms, NodeKind::Admit, Some(*job));
                self.pending_chain.insert(*job, seq);
            }
            SchedEvent::Audit(rec) => match rec {
                AuditRecord::Phase1Order { order, .. } => {
                    self.add(seq, time_ms, NodeKind::Rank, None);
                    // Many jobs can share one chain predecessor (an
                    // earlier rank node); dedup so each causal link
                    // appears once.
                    let prevs: BTreeSet<DecisionId> = order
                        .iter()
                        .filter_map(|e| self.pending_chain.get(&e.job).copied())
                        .collect();
                    for prev in prevs {
                        self.graph.add_edge(prev, seq, EdgeKind::Rank);
                    }
                    for e in order {
                        self.pending_chain.insert(e.job, seq);
                    }
                }
                AuditRecord::Phase2Mckp { groups, .. } => {
                    self.add(seq, time_ms, NodeKind::MckpVerdict, None);
                    let prevs: BTreeSet<DecisionId> = groups
                        .iter()
                        .filter_map(|g| self.pending_chain.get(&g.job).copied())
                        .collect();
                    for prev in prevs {
                        self.graph.add_edge(prev, seq, EdgeKind::MckpVerdict);
                    }
                    for g in groups {
                        self.pending_chain.insert(g.job, seq);
                    }
                }
                AuditRecord::PlacementDecision { job, .. } => {
                    self.add(seq, time_ms, NodeKind::Placement, Some(*job));
                    if let Some(&prev) = self.pending_chain.get(job) {
                        self.graph.add_edge(prev, seq, EdgeKind::Placement);
                    }
                    self.pending_chain.insert(*job, seq);
                }
                AuditRecord::ReclaimChoice { .. } => {
                    self.add(seq, time_ms, NodeKind::ReclaimChoice, None);
                    if let Some(demand) = self.pending_demand {
                        self.graph.add_edge(demand, seq, EdgeKind::ReclaimRanking);
                    }
                }
            },
            SchedEvent::JobStart {
                job,
                on_loan,
                servers,
                ..
            } => {
                self.add(seq, time_ms, NodeKind::Launch, Some(*job));
                if let Some(prev) = self.pending_chain.remove(job) {
                    self.graph.add_edge(prev, seq, EdgeKind::Launch);
                }
                if let Some(restart) = self.pending_restart.remove(job) {
                    self.graph.add_edge(restart, seq, EdgeKind::Replacement);
                }
                if *on_loan {
                    self.link_loans(seq, servers);
                }
            }
            SchedEvent::JobScaleOut {
                job,
                on_loan,
                servers,
                ..
            } => {
                self.add(seq, time_ms, NodeKind::ScaleOut, Some(*job));
                if *on_loan {
                    self.link_loans(seq, servers);
                }
            }
            SchedEvent::LoanGrant { servers } => {
                self.add(seq, time_ms, NodeKind::LoanGrant, None);
                for s in servers {
                    self.loaned_by.insert(*s, seq);
                }
            }
            SchedEvent::ReclaimDemand { .. } => {
                self.add(seq, time_ms, NodeKind::ReclaimDemand, None);
                self.pending_demand = Some(seq);
            }
            SchedEvent::JobPreempt { job, decision, .. } => {
                self.add(seq, time_ms, NodeKind::Preempt, Some(*job));
                if let Some(d) = decision {
                    self.graph.add_edge(*d, seq, EdgeKind::Preemption);
                }
                // The job re-queues; its next scheduling chain hangs off
                // the preemption.
                self.pending_chain.insert(*job, seq);
            }
            SchedEvent::Fault { kind, target } if kind == "job_killed" => {
                self.add(seq, time_ms, NodeKind::Kill, Some(*target));
                self.pending_kill.insert(*target, seq);
            }
            SchedEvent::Fault { kind, target } if kind == "restart" => {
                self.add(seq, time_ms, NodeKind::Restart, Some(*target));
                if let Some(kill) = self.pending_kill.remove(target) {
                    self.graph.add_edge(kill, seq, EdgeKind::Restart);
                }
                self.pending_restart.insert(*target, seq);
                self.pending_chain.insert(*target, seq);
            }
            _ => {}
        }
    }

    fn link_loans(&mut self, seq: DecisionId, servers: &[u32]) {
        let grants: BTreeSet<DecisionId> = servers
            .iter()
            .filter_map(|s| self.loaned_by.get(s).copied())
            .collect();
        for grant in grants {
            self.graph.add_edge(grant, seq, EdgeKind::LoanEnabled);
        }
    }
}

/// Builds the provenance graph offline from a parsed JSONL log.
///
/// Runs the same transition function the online tracker runs, over the
/// persisted `(seq, event)` stream, so the result is identical to the
/// graph the live observer built.
pub fn build_provenance(events: &[TimedEvent]) -> ProvenanceGraph {
    let mut tracker = ProvenanceTracker::new();
    for ev in events {
        tracker.observe(ev.time_ms, ev.seq, &ev.event);
    }
    tracker.into_graph()
}

/// The node a delay interval is anchored on: the decision (or fault)
/// whose effect opened the interval.
fn anchor_for(
    graph: &ProvenanceGraph,
    job: u64,
    cause: DelayCause,
    start_ms: u64,
) -> Option<&ProvenanceNode> {
    match cause {
        DelayCause::ReclaimPreemption => graph.latest_for_job(job, NodeKind::Preempt, start_ms),
        DelayCause::FaultRestart => graph.latest_for_job(job, NodeKind::Kill, start_ms),
        // A checkpoint restore follows either a checkpointed preemption
        // or a fault kill; whichever happened later explains it.
        DelayCause::CheckpointRestore => {
            let preempt = graph.latest_for_job(job, NodeKind::Preempt, start_ms);
            let kill = graph.latest_for_job(job, NodeKind::Kill, start_ms);
            match (preempt, kill) {
                (Some(p), Some(k)) => Some(if p.id >= k.id { p } else { k }),
                (p, k) => p.or(k),
            }
        }
        _ => None,
    }
}

fn render_ancestors(graph: &ProvenanceGraph, id: DecisionId, depth: usize, out: &mut String) {
    for edge in graph.incoming(id) {
        if let Some(node) = graph.node(edge.from) {
            out.push_str(&format!(
                "{}<- {} by {} #{} at {}s\n",
                "  ".repeat(depth),
                edge.kind.label(),
                node.kind.label(),
                node.id,
                fmt_s(node.time_ms),
            ));
            render_ancestors(graph, node.id, depth + 1, out);
        }
    }
}

/// Renders the causal chain behind every delay interval of `job`.
///
/// Each interval from the PR 5 taxonomy is printed with its cause and
/// duration; intervals opened by a decision (reclaim preemption,
/// checkpoint restore, fault restart) additionally print the decision
/// chain that caused them — for a reclaim, the preemption, the victim
/// ranking that picked the job, and the loan-demand that triggered the
/// wave. Errors if the job never appears in the log.
pub fn render_why(
    graph: &ProvenanceGraph,
    attrs: &[JobAttribution],
    job: u64,
) -> Result<String, String> {
    let attr = attrs
        .iter()
        .find(|a| a.job == job)
        .ok_or_else(|| format!("job {job} not found in log"))?;
    let completion = match attr.completion_ms {
        Some(ms) => format!("{}s", fmt_s(ms)),
        None => "-".to_string(),
    };
    let mut out = String::new();
    out.push_str(&format!(
        "job {job}: arrival {}s, completion {completion}\n",
        fmt_s(attr.arrival_ms),
    ));
    for iv in &attr.intervals {
        out.push_str(&format!(
            "[{}s .. {}s] {} ({}s)\n",
            fmt_s(iv.start_ms),
            fmt_s(iv.end_ms),
            iv.cause.label(),
            fmt_s(iv.len_ms()),
        ));
        if let Some(anchor) = anchor_for(graph, job, iv.cause, iv.start_ms) {
            out.push_str(&format!(
                "  caused by {} #{} at {}s\n",
                anchor.kind.label(),
                anchor.id,
                fmt_s(anchor.time_ms),
            ));
            render_ancestors(graph, anchor.id, 2, &mut out);
        }
    }
    Ok(out)
}

/// [`render_why`] over a parsed log: builds the graph and attributions
/// offline, then renders. Byte-identical to the live-run rendering of
/// the same events.
pub fn why_from_log(events: &[TimedEvent], job: u64) -> Result<String, String> {
    render_why(&build_provenance(events), &attribute_log(events), job)
}

/// Renders the blame table: reclaim decisions ranked by the total
/// victim delay attributed to them.
///
/// Every `reclaim-preemption` (and preemption-anchored
/// `checkpoint-restore`) interval is charged to the `ReclaimChoice`
/// decision whose victim ranking picked the job; decisions are ranked
/// by total milliseconds charged, descending (ties broken by id).
pub fn render_blame(graph: &ProvenanceGraph, attrs: &[JobAttribution], top: usize) -> String {
    let mut agg: BTreeMap<DecisionId, (u64, BTreeSet<u64>)> = BTreeMap::new();
    for attr in attrs {
        for iv in &attr.intervals {
            if !matches!(
                iv.cause,
                DelayCause::ReclaimPreemption | DelayCause::CheckpointRestore
            ) {
                continue;
            }
            let Some(anchor) = anchor_for(graph, attr.job, iv.cause, iv.start_ms) else {
                continue;
            };
            // Fault-anchored checkpoint restores blame no scheduling
            // decision.
            if anchor.kind != NodeKind::Preempt {
                continue;
            }
            let Some(choice) = graph
                .incoming(anchor.id)
                .find(|e| e.kind == EdgeKind::Preemption)
                .and_then(|e| graph.node(e.from))
            else {
                continue;
            };
            let entry = agg.entry(choice.id).or_default();
            entry.0 += iv.len_ms();
            entry.1.insert(attr.job);
        }
    }
    let mut rows: Vec<(DecisionId, (u64, BTreeSet<u64>))> = agg.into_iter().collect();
    rows.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(&b.0)));
    rows.truncate(top);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<16} {:>12} {:>14} {:>8} {:>8}\n",
        "decision", "kind", "time_s", "victim_delay_s", "victims", "demand"
    ));
    for (id, (ms, victims)) in rows {
        let (kind, time) = match graph.node(id) {
            Some(n) => (n.kind.label(), fmt_s(n.time_ms)),
            None => ("?", "?".to_string()),
        };
        let demand = graph
            .incoming(id)
            .find(|e| e.kind == EdgeKind::ReclaimRanking)
            .map(|e| format!("#{}", e.from))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{:<10} {:<16} {:>12} {:>14} {:>8} {:>8}\n",
            format!("#{id}"),
            kind,
            time,
            fmt_s(ms),
            victims.len(),
            demand,
        ));
    }
    out
}

/// [`render_blame`] over a parsed log.
pub fn blame_from_log(events: &[TimedEvent], top: usize) -> String {
    render_blame(&build_provenance(events), &attribute_log(events), top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{Phase1Entry, ReclaimCandidate};

    fn timed(events: Vec<(u64, SchedEvent)>) -> Vec<TimedEvent> {
        events
            .into_iter()
            .enumerate()
            .map(|(i, (time_ms, event))| TimedEvent {
                time_ms,
                seq: i as u64,
                event,
            })
            .collect()
    }

    /// A hand-built run: job 1 launches on loaned capacity, a reclaim
    /// wave preempts it, a fault later kills and restarts it.
    fn sample_events() -> Vec<TimedEvent> {
        timed(vec![
            // 0: admit
            (0, SchedEvent::JobAdmit { job: 1 }),
            // 1: loan grant for server 9
            (0, SchedEvent::LoanGrant { servers: vec![9] }),
            // 2: phase-1 rank
            (
                1000,
                SchedEvent::Audit(AuditRecord::Phase1Order {
                    capacity_gpus: 8,
                    order: vec![Phase1Entry {
                        job: 1,
                        est_running_time_s: 60.0,
                        base_gpus: 2,
                        admitted: true,
                        cause: None,
                    }],
                }),
            ),
            // 3: placement
            (
                1000,
                SchedEvent::Audit(AuditRecord::PlacementDecision {
                    job: 1,
                    role: "inelastic".to_string(),
                    gpus: 2,
                    chosen: Some(9),
                    chosen_free_gpus: 8,
                    alternatives: vec![],
                }),
            ),
            // 4: launch on the loaned server
            (
                1000,
                SchedEvent::JobStart {
                    job: 1,
                    workers: 2,
                    on_loan: true,
                    servers: vec![9],
                },
            ),
            // 5: loan-demand
            (5000, SchedEvent::ReclaimDemand { servers: 1 }),
            // 6: victim ranking picks server 9, preempting job 1
            (
                5000,
                SchedEvent::Audit(AuditRecord::ReclaimChoice {
                    need: 1,
                    candidates: vec![ReclaimCandidate {
                        server: 9,
                        cost: 1.0,
                        collateral_gpus: 0,
                    }],
                    chosen: 9,
                    preempted: vec![1],
                    cause: Some(DelayCause::ReclaimPreemption),
                }),
            ),
            // 7: the preemption, carrying the decision id
            (
                5000,
                SchedEvent::JobPreempt {
                    job: 1,
                    checkpointed: false,
                    decision: Some(6),
                },
            ),
            // 8: relaunch
            (
                8000,
                SchedEvent::JobStart {
                    job: 1,
                    workers: 2,
                    on_loan: false,
                    servers: vec![0],
                },
            ),
            // 9-10: fault kill + restart
            (
                9000,
                SchedEvent::Fault {
                    kind: "job_killed".to_string(),
                    target: 1,
                },
            ),
            (
                9000,
                SchedEvent::Fault {
                    kind: "restart".to_string(),
                    target: 1,
                },
            ),
            // 11: re-placement after the fault
            (
                12000,
                SchedEvent::JobStart {
                    job: 1,
                    workers: 2,
                    on_loan: false,
                    servers: vec![0],
                },
            ),
            // 12: completion
            (20000, SchedEvent::JobComplete { job: 1, jct_s: 20.0 }),
        ])
    }

    #[test]
    fn builds_the_expected_edges() {
        let graph = build_provenance(&sample_events());
        assert!(graph.is_acyclic());
        let has = |from: u64, to: u64, kind: EdgeKind| {
            graph
                .edges()
                .iter()
                .any(|e| e.from == from && e.to == to && e.kind == kind)
        };
        assert!(has(0, 2, EdgeKind::Rank), "admit -> rank");
        assert!(has(2, 3, EdgeKind::Placement), "rank -> placement");
        assert!(has(3, 4, EdgeKind::Launch), "placement -> launch");
        assert!(has(1, 4, EdgeKind::LoanEnabled), "loan-grant -> launch");
        assert!(has(5, 6, EdgeKind::ReclaimRanking), "demand -> choice");
        assert!(has(6, 7, EdgeKind::Preemption), "choice -> preempt");
        assert!(has(7, 8, EdgeKind::Launch), "preempt -> relaunch");
        assert!(has(9, 10, EdgeKind::Restart), "kill -> restart");
        assert!(has(10, 11, EdgeKind::Replacement), "restart -> re-place");
    }

    #[test]
    fn why_names_demand_and_ranking_for_the_preemption() {
        let out = why_from_log(&sample_events(), 1).expect("job exists");
        assert!(out.contains("reclaim-preemption"), "{out}");
        assert!(out.contains("caused by preempt #7"), "{out}");
        assert!(out.contains("<- preempted by victim-ranking #6"), "{out}");
        assert!(out.contains("<- reclaim-ranking by loan-demand #5"), "{out}");
        assert!(out.contains("fault-restart"), "{out}");
        assert!(out.contains("caused by fault-kill #9"), "{out}");
    }

    #[test]
    fn why_errors_on_unknown_job() {
        assert!(why_from_log(&sample_events(), 42).is_err());
    }

    #[test]
    fn blame_charges_the_reclaim_choice() {
        let out = blame_from_log(&sample_events(), 10);
        assert!(out.contains("#6"), "{out}");
        assert!(out.contains("victim-ranking"), "{out}");
        assert!(out.contains("#5"), "demand column: {out}");
        // 3s of reclaim-preemption delay (5000..8000ms), one victim.
        assert!(out.contains("3.000"), "{out}");
    }

    #[test]
    fn tracker_state_round_trips_through_serde() {
        let events = sample_events();
        // Split mid-run: checkpoint after the preemption, resume, finish.
        let mut live = ProvenanceTracker::new();
        for ev in &events {
            live.observe(ev.time_ms, ev.seq, &ev.event);
        }
        let mut half = ProvenanceTracker::new();
        for ev in &events[..8] {
            half.observe(ev.time_ms, ev.seq, &ev.event);
        }
        let json = serde_json::to_string(&half).expect("serialize");
        let mut resumed: ProvenanceTracker = serde_json::from_str(&json).expect("parse");
        for ev in &events[8..] {
            resumed.observe(ev.time_ms, ev.seq, &ev.event);
        }
        assert_eq!(resumed, live);
        assert_eq!(resumed.into_graph(), build_provenance(&events));
    }
}
