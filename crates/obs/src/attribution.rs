//! Delay-cause taxonomy and exact JCT decomposition.
//!
//! Every millisecond between a job's arrival and its completion is
//! attributed to exactly one [`DelayCause`]: the intervals produced by
//! [`LifecycleTracker`](crate::lifecycle::LifecycleTracker) partition
//! `[arrival, completion)` with no gaps, no overlaps and no
//! unattributed remainder — [`JobAttribution::reconcile`] checks the
//! invariant and the simulation engine enforces it at the end of every
//! run. All arithmetic is integer milliseconds, so attribution tables
//! are byte-identical across same-seed runs.

use serde::{Deserialize, Serialize};

/// Why a span of a job's lifetime elapsed the way it did.
///
/// The first seven variants are the causal taxonomy from the paper's
/// mechanisms; the last three account for the remaining wall-clock so
/// the decomposition is exact rather than best-effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DelayCause {
    /// Queued because phase-1 had no free GPUs for the base demand.
    GpuScarcity,
    /// Phase-2 MCKP denied or withdrew flexible workers (scale-in
    /// rendezvous stall after losing a knapsack round).
    MckpDenial,
    /// Preempted (or restoring) because the inference side reclaimed
    /// loaned capacity.
    ReclaimPreemption,
    /// Killed by a fault and restarted from scratch.
    FaultRestart,
    /// Re-loading a checkpoint after a preemption or fault.
    CheckpointRestore,
    /// Scale-in rendezvous stall from returning loaned capacity
    /// (flexible workers vacated under reclaim pressure).
    LoanScaleIn,
    /// Running slower than nominal because a worker sits on a
    /// straggling server.
    StragglerSlowdown,
    /// Scheduler-to-running launch delay (image pull, gang setup).
    LaunchOverhead,
    /// Elastic rendezvous stall from a voluntary scale-out.
    Rendezvous,
    /// Training at full speed.
    Productive,
}

impl DelayCause {
    /// Every cause, in canonical table order.
    pub const ALL: [DelayCause; 10] = [
        DelayCause::GpuScarcity,
        DelayCause::MckpDenial,
        DelayCause::ReclaimPreemption,
        DelayCause::FaultRestart,
        DelayCause::CheckpointRestore,
        DelayCause::LoanScaleIn,
        DelayCause::StragglerSlowdown,
        DelayCause::LaunchOverhead,
        DelayCause::Rendezvous,
        DelayCause::Productive,
    ];

    /// Stable kebab-case label used in tables and Chrome traces.
    pub fn label(self) -> &'static str {
        match self {
            DelayCause::GpuScarcity => "gpu-scarcity",
            DelayCause::MckpDenial => "mckp-denial",
            DelayCause::ReclaimPreemption => "reclaim-preemption",
            DelayCause::FaultRestart => "fault-restart",
            DelayCause::CheckpointRestore => "checkpoint-restore",
            DelayCause::LoanScaleIn => "loan-scale-in",
            DelayCause::StragglerSlowdown => "straggler-slowdown",
            DelayCause::LaunchOverhead => "launch-overhead",
            DelayCause::Rendezvous => "rendezvous",
            DelayCause::Productive => "productive",
        }
    }

    /// Parses a kebab-case label back into its cause — the inverse of
    /// [`label`](Self::label). `None` for unknown labels, so CLI filters
    /// can reject typos with the full alternatives list.
    pub fn from_label(label: &str) -> Option<DelayCause> {
        DelayCause::ALL.iter().copied().find(|c| c.label() == label)
    }

    fn rank(self) -> usize {
        DelayCause::ALL.iter().position(|c| *c == self).unwrap_or(0)
    }
}

/// One half-open span `[start_ms, end_ms)` of a job's lifetime with its
/// attributed cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributedInterval {
    /// Span start, simulated milliseconds.
    pub start_ms: u64,
    /// Span end (exclusive), simulated milliseconds.
    pub end_ms: u64,
    /// The single cause this span is charged to.
    pub cause: DelayCause,
}

impl AttributedInterval {
    /// Span length in milliseconds.
    pub fn len_ms(&self) -> u64 {
        self.end_ms.saturating_sub(self.start_ms)
    }
}

/// The full JCT decomposition for one job: a gapless, ordered partition
/// of `[arrival, completion)` into cause-attributed intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobAttribution {
    /// Job id.
    pub job: u64,
    /// Arrival (queue admission) time, milliseconds.
    pub arrival_ms: u64,
    /// Completion time, milliseconds; `None` when the run ended with the
    /// job still pending or running (intervals then extend to the end of
    /// observation).
    pub completion_ms: Option<u64>,
    /// The attributed intervals, in time order.
    pub intervals: Vec<AttributedInterval>,
}

impl JobAttribution {
    /// Total attributed time: the sum of all interval lengths.
    pub fn attributed_ms(&self) -> u64 {
        self.intervals.iter().map(AttributedInterval::len_ms).sum()
    }

    /// Per-cause totals in canonical order, zero-total causes omitted.
    pub fn cause_totals_ms(&self) -> Vec<(DelayCause, u64)> {
        let mut totals = [0u64; DelayCause::ALL.len()];
        for iv in &self.intervals {
            totals[iv.cause.rank()] += iv.len_ms();
        }
        DelayCause::ALL
            .iter()
            .zip(totals)
            .filter(|(_, t)| *t > 0)
            .map(|(c, t)| (*c, t))
            .collect()
    }

    /// Time lost to anything other than productive training.
    pub fn lost_ms(&self) -> u64 {
        self.intervals
            .iter()
            .filter(|iv| iv.cause != DelayCause::Productive)
            .map(AttributedInterval::len_ms)
            .sum()
    }

    /// Checks the decomposition invariant: intervals are ordered,
    /// disjoint and contiguous, the first starts at arrival, and — for
    /// completed jobs — the last ends at completion so the sum of
    /// lengths equals `completion − arrival` exactly.
    pub fn reconcile(&self) -> Result<(), String> {
        let mut cursor = self.arrival_ms;
        for (i, iv) in self.intervals.iter().enumerate() {
            if iv.start_ms != cursor {
                return Err(format!(
                    "job {}: interval {} starts at {} but previous coverage ends at {} \
                     (gap or overlap)",
                    self.job, i, iv.start_ms, cursor
                ));
            }
            if iv.end_ms < iv.start_ms {
                return Err(format!(
                    "job {}: interval {} is negative ([{}, {}))",
                    self.job, i, iv.start_ms, iv.end_ms
                ));
            }
            cursor = iv.end_ms;
        }
        if let Some(done) = self.completion_ms {
            if cursor != done {
                return Err(format!(
                    "job {}: attributed coverage ends at {} but completion is {} \
                     ({} ms unattributed)",
                    self.job,
                    cursor,
                    done,
                    done.abs_diff(cursor)
                ));
            }
            let span = done - self.arrival_ms;
            let sum = self.attributed_ms();
            if sum != span {
                return Err(format!(
                    "job {}: Σ intervals = {} ms but completion − arrival = {} ms",
                    self.job, sum, span
                ));
            }
        }
        Ok(())
    }
}

/// Per-cause cluster rollup: totals and per-job-total percentiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CauseStat {
    /// The cause.
    pub cause: DelayCause,
    /// Jobs with any time attributed to this cause.
    pub jobs: usize,
    /// Total milliseconds across all jobs.
    pub total_ms: u64,
    /// Median per-job total among affected jobs, milliseconds.
    pub p50_ms: u64,
    /// 95th-percentile per-job total, milliseconds.
    pub p95_ms: u64,
    /// 99th-percentile per-job total, milliseconds.
    pub p99_ms: u64,
}

/// Cluster-level attribution rollup stored in `SimReport`.
///
/// Integer milliseconds only, so the summary participates in report
/// equality checks and same-seed byte-identity.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AttributionSummary {
    /// Jobs tracked.
    pub jobs: usize,
    /// Jobs that completed inside the observed window.
    pub completed: usize,
    /// Total attributed milliseconds across all jobs.
    pub total_ms: u64,
    /// Per-cause rollups in canonical order (zero-total causes omitted).
    pub causes: Vec<CauseStat>,
}

/// Nearest-rank percentile over a sorted slice (integer arithmetic, no
/// interpolation — deterministic across platforms).
fn percentile_ms(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Rolls per-job attributions up into a cluster summary.
pub fn summarize(attrs: &[JobAttribution]) -> AttributionSummary {
    let mut per_cause: Vec<Vec<u64>> = vec![Vec::new(); DelayCause::ALL.len()];
    let mut total_ms = 0u64;
    let mut completed = 0usize;
    for a in attrs {
        if a.completion_ms.is_some() {
            completed += 1;
        }
        for (cause, ms) in a.cause_totals_ms() {
            per_cause[cause.rank()].push(ms);
            total_ms += ms;
        }
    }
    let causes = DelayCause::ALL
        .iter()
        .zip(per_cause.iter_mut())
        .filter(|(_, totals)| !totals.is_empty())
        .map(|(cause, totals)| {
            totals.sort_unstable();
            CauseStat {
                cause: *cause,
                jobs: totals.len(),
                total_ms: totals.iter().sum(),
                p50_ms: percentile_ms(totals, 50),
                p95_ms: percentile_ms(totals, 95),
                p99_ms: percentile_ms(totals, 99),
            }
        })
        .collect();
    AttributionSummary {
        jobs: attrs.len(),
        completed,
        total_ms,
        causes,
    }
}

pub(crate) fn fmt_s(ms: u64) -> String {
    format!("{}.{:03}", ms / 1000, ms % 1000)
}

impl AttributionSummary {
    /// Renders the fixed-width attribution table (deterministic; the
    /// golden gate pins it byte-for-byte).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:>6} {:>14} {:>12} {:>12} {:>12}\n",
            "cause", "jobs", "total_s", "p50_s", "p95_s", "p99_s"
        ));
        for c in &self.causes {
            out.push_str(&format!(
                "{:<20} {:>6} {:>14} {:>12} {:>12} {:>12}\n",
                c.cause.label(),
                c.jobs,
                fmt_s(c.total_ms),
                fmt_s(c.p50_ms),
                fmt_s(c.p95_ms),
                fmt_s(c.p99_ms),
            ));
        }
        out.push_str(&format!(
            "jobs: {} ({} completed), attributed: {} s\n",
            self.jobs,
            self.completed,
            fmt_s(self.total_ms)
        ));
        out
    }
}

/// Renders the ranked per-job cause breakdown for `attribute <job-id>`.
///
/// `max_intervals` caps the timeline section; longer histories elide
/// the middle (first and last halves are kept).
pub fn render_job(attr: &JobAttribution, max_intervals: usize) -> String {
    let mut out = format!("delay attribution for job {}\n", attr.job);
    match attr.completion_ms {
        Some(done) => out.push_str(&format!(
            "  arrival {} s, completion {} s, JCT {} s\n",
            fmt_s(attr.arrival_ms),
            fmt_s(done),
            fmt_s(done - attr.arrival_ms)
        )),
        None => out.push_str(&format!(
            "  arrival {} s, still incomplete at end of observation\n",
            fmt_s(attr.arrival_ms)
        )),
    }
    let mut ranked = attr.cause_totals_ms();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.rank().cmp(&b.0.rank())));
    let total = attr.attributed_ms().max(1);
    out.push_str("  ranked causes:\n");
    for (cause, ms) in &ranked {
        out.push_str(&format!(
            "    {:<20} {:>12} s  ({:>3}%)\n",
            cause.label(),
            fmt_s(*ms),
            ms * 100 / total
        ));
    }
    out.push_str(&format!("  timeline ({} intervals):\n", attr.intervals.len()));
    let n = attr.intervals.len();
    let (head, tail) = if n > max_intervals {
        (max_intervals / 2, max_intervals - max_intervals / 2)
    } else {
        (n, 0)
    };
    for iv in &attr.intervals[..head] {
        out.push_str(&format!(
            "    [{:>10} .. {:>10}) {:>10} s  {}\n",
            fmt_s(iv.start_ms),
            fmt_s(iv.end_ms),
            fmt_s(iv.len_ms()),
            iv.cause.label()
        ));
    }
    if tail > 0 {
        out.push_str(&format!("    ... ({} intervals elided)\n", n - head - tail));
        for iv in &attr.intervals[n - tail..] {
            out.push_str(&format!(
                "    [{:>10} .. {:>10}) {:>10} s  {}\n",
                fmt_s(iv.start_ms),
                fmt_s(iv.end_ms),
                fmt_s(iv.len_ms()),
                iv.cause.label()
            ));
        }
    }
    out
}

/// Renders the `attribute --top N` report: jobs ranked by time lost to
/// non-productive causes (descending; job id breaks ties).
pub fn render_top(attrs: &[JobAttribution], n: usize) -> String {
    let mut ranked: Vec<&JobAttribution> = attrs.iter().collect();
    ranked.sort_by(|a, b| b.lost_ms().cmp(&a.lost_ms()).then(a.job.cmp(&b.job)));
    let mut out = format!(
        "top {} jobs by attributed delay (of {} jobs)\n",
        n.min(ranked.len()),
        ranked.len()
    );
    out.push_str(&format!(
        "{:>8} {:>12} {:>12}  {}\n",
        "job", "jct_s", "lost_s", "dominant cause"
    ));
    for a in ranked.iter().take(n) {
        let jct = a
            .completion_ms
            .map(|d| fmt_s(d - a.arrival_ms))
            .unwrap_or_else(|| "-".to_string());
        let dominant = a
            .cause_totals_ms()
            .into_iter()
            .filter(|(c, _)| *c != DelayCause::Productive)
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.rank().cmp(&a.0.rank())))
            .map(|(c, ms)| format!("{} ({} s)", c.label(), fmt_s(ms)))
            .unwrap_or_else(|| "none".to_string());
        out.push_str(&format!(
            "{:>8} {:>12} {:>12}  {}\n",
            a.job,
            jct,
            fmt_s(a.lost_ms()),
            dominant
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(start_ms: u64, end_ms: u64, cause: DelayCause) -> AttributedInterval {
        AttributedInterval {
            start_ms,
            end_ms,
            cause,
        }
    }

    #[test]
    fn reconcile_accepts_exact_partitions_and_rejects_gaps() {
        let good = JobAttribution {
            job: 1,
            arrival_ms: 100,
            completion_ms: Some(400),
            intervals: vec![
                iv(100, 200, DelayCause::GpuScarcity),
                iv(200, 250, DelayCause::LaunchOverhead),
                iv(250, 400, DelayCause::Productive),
            ],
        };
        good.reconcile().expect("exact partition reconciles");
        assert_eq!(good.attributed_ms(), 300);
        assert_eq!(good.lost_ms(), 150);

        let gap = JobAttribution {
            intervals: vec![
                iv(100, 200, DelayCause::GpuScarcity),
                iv(210, 400, DelayCause::Productive),
            ],
            ..good.clone()
        };
        assert!(gap.reconcile().is_err(), "gap must fail");

        let short = JobAttribution {
            intervals: vec![iv(100, 300, DelayCause::Productive)],
            ..good
        };
        assert!(short.reconcile().is_err(), "unattributed tail must fail");
    }

    #[test]
    fn summary_rolls_up_per_cause_percentiles() {
        let attrs: Vec<JobAttribution> = (0..4u64)
            .map(|j| JobAttribution {
                job: j,
                arrival_ms: 0,
                completion_ms: Some(1000 * (j + 1)),
                intervals: vec![
                    iv(0, 500, DelayCause::GpuScarcity),
                    iv(500, 1000 * (j + 1), DelayCause::Productive),
                ],
            })
            .collect();
        let s = summarize(&attrs);
        assert_eq!(s.jobs, 4);
        assert_eq!(s.completed, 4);
        assert_eq!(s.total_ms, 1000 + 2000 + 3000 + 4000);
        let scarcity = s
            .causes
            .iter()
            .find(|c| c.cause == DelayCause::GpuScarcity)
            .expect("cause present");
        assert_eq!(scarcity.jobs, 4);
        assert_eq!(scarcity.total_ms, 2000);
        assert_eq!(scarcity.p50_ms, 500);
        // Rendering is pure text over integers: stable across runs.
        let a = s.render_table();
        let b = summarize(&attrs).render_table();
        assert_eq!(a, b);
        assert!(a.contains("gpu-scarcity"));
    }

    #[test]
    fn render_job_ranks_and_elides() {
        let mut intervals = Vec::new();
        for i in 0..20u64 {
            let cause = if i % 2 == 0 {
                DelayCause::Productive
            } else {
                DelayCause::Rendezvous
            };
            intervals.push(iv(i * 10, (i + 1) * 10, cause));
        }
        let attr = JobAttribution {
            job: 9,
            arrival_ms: 0,
            completion_ms: Some(200),
            intervals,
        };
        let text = render_job(&attr, 8);
        assert!(text.contains("ranked causes"));
        assert!(text.contains("intervals elided"));
        let top = render_top(std::slice::from_ref(&attr), 5);
        assert!(top.contains("rendezvous"));
    }
}
