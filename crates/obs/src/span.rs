//! Scoped wall-clock timers for the hot paths, aggregated into a
//! per-phase self-time profile.
//!
//! A [`span`] guard times the scope it lives in; nested spans subtract
//! child time so the profile reports *self* time per phase as well as
//! inclusive totals. State is thread-local (one simulation per thread)
//! and disabled by default — an inactive span is one thread-local
//! boolean read, which keeps the instrumented hot paths within the
//! overhead budget when no observer is attached.
//!
//! Wall-clock readings never enter the event log or the metrics
//! registry, so timing does not perturb determinism; [`Profile`]
//! deliberately compares equal to any other profile for the same reason
//! (reports carrying profiles stay `==` across same-seed runs).

use std::cell::RefCell;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Aggregated timing for one named phase.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Phase name, e.g. `core.mckp`.
    pub name: String,
    /// Times the phase was entered.
    pub calls: u64,
    /// Inclusive wall time, seconds.
    pub total_s: f64,
    /// Self wall time (inclusive minus time in nested spans), seconds.
    pub self_s: f64,
}

/// A per-phase self-time profile, sorted by descending self time.
///
/// `PartialEq` is intentionally always-true: profiles carry wall-clock
/// measurements, which must not break value equality of otherwise
/// deterministic reports.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Profile(pub Vec<PhaseStat>);

impl PartialEq for Profile {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Profile {
    /// Renders the profile as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::from("phase                        calls     total_s      self_s\n");
        for p in &self.0 {
            out.push_str(&format!(
                "{:<28} {:>6} {:>11.6} {:>11.6}\n",
                p.name, p.calls, p.total_s, p.self_s
            ));
        }
        out
    }
}

struct ActiveSpan {
    name: &'static str,
    start: Instant,
    child_s: f64,
}

struct ProfilerState {
    enabled: bool,
    stack: Vec<ActiveSpan>,
    // (calls, total_s, self_s) per phase name.
    totals: Vec<(&'static str, u64, f64, f64)>,
}

thread_local! {
    static PROFILER: RefCell<ProfilerState> = const {
        RefCell::new(ProfilerState { enabled: false, stack: Vec::new(), totals: Vec::new() })
    };
}

/// Enables or disables span timing on this thread; disabling also
/// clears accumulated state.
pub fn set_enabled(enabled: bool) {
    PROFILER.with(|p| {
        let mut p = p.borrow_mut();
        p.enabled = enabled;
        if !enabled {
            p.stack.clear();
            p.totals.clear();
        }
    });
}

/// Opens a timed span named `name`; timing stops when the returned
/// guard drops. Inactive (near-free) when timing is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    let active = PROFILER.with(|p| {
        let mut p = p.borrow_mut();
        if !p.enabled {
            return false;
        }
        p.stack.push(ActiveSpan {
            name,
            start: Instant::now(),
            child_s: 0.0,
        });
        true
    });
    SpanGuard { active }
}

/// RAII guard returned by [`span`]; records elapsed time on drop.
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        PROFILER.with(|p| {
            let mut p = p.borrow_mut();
            let Some(span) = p.stack.pop() else { return };
            let elapsed = span.start.elapsed().as_secs_f64();
            let self_s = (elapsed - span.child_s).max(0.0);
            if let Some(parent) = p.stack.last_mut() {
                parent.child_s += elapsed;
            }
            if let Some(t) = p.totals.iter_mut().find(|t| t.0 == span.name) {
                t.1 += 1;
                t.2 += elapsed;
                t.3 += self_s;
            } else {
                p.totals.push((span.name, 1, elapsed, self_s));
            }
        });
    }
}

/// Takes the profile accumulated on this thread since timing was
/// enabled (or last taken), sorted by descending self time.
pub fn take_profile() -> Profile {
    let mut stats: Vec<PhaseStat> = PROFILER.with(|p| {
        p.borrow_mut()
            .totals
            .drain(..)
            .map(|(name, calls, total_s, self_s)| PhaseStat {
                name: name.to_string(),
                calls,
                total_s,
                self_s,
            })
            .collect()
    });
    stats.sort_by(|a, b| b.self_s.total_cmp(&a.self_s).then(a.name.cmp(&b.name)));
    Profile(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        set_enabled(false);
        {
            let _g = span("test.noop");
        }
        assert!(take_profile().0.is_empty());
    }

    #[test]
    fn nested_spans_split_self_time() {
        set_enabled(true);
        {
            let _outer = span("test.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("test.inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let profile = take_profile();
        set_enabled(false);
        let outer = profile.0.iter().find(|p| p.name == "test.outer").unwrap();
        let inner = profile.0.iter().find(|p| p.name == "test.inner").unwrap();
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(outer.total_s >= inner.total_s);
        assert!(
            outer.self_s <= outer.total_s - inner.total_s + 1e-9,
            "outer self time excludes inner: self={} total={} inner={}",
            outer.self_s,
            outer.total_s,
            inner.total_s
        );
    }

    #[test]
    fn reentrant_same_name_spans_accumulate_both_frames() {
        set_enabled(true);
        {
            let _outer = span("test.recursive");
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = span("test.recursive");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let profile = take_profile();
        set_enabled(false);
        let stat = profile
            .0
            .iter()
            .find(|p| p.name == "test.recursive")
            .expect("phase recorded");
        // Both frames count as calls; the inner frame's elapsed time is
        // charged to the outer frame's child_s, so self time never
        // double-counts the overlap: self_s stays at (or below, via the
        // max(0) clamp) the inner frame's wall time plus the outer
        // frame's own exclusive time — i.e. strictly less than total_s,
        // which sums both inclusive frames.
        assert_eq!(stat.calls, 2);
        assert!(stat.self_s <= stat.total_s);
        assert!(stat.total_s > 0.0);
        // total_s includes the inner frame twice (once inclusively in
        // the outer frame); self_s must not.
        assert!(
            stat.self_s < stat.total_s,
            "re-entrant self time must exclude the nested frame: self={} total={}",
            stat.self_s,
            stat.total_s
        );
    }

    #[test]
    fn empty_profile_renders_header_only() {
        let rendered = Profile::default().render();
        assert_eq!(rendered.lines().count(), 1);
        assert!(rendered.starts_with("phase"));
        assert!(rendered.contains("self_s"));
    }

    #[test]
    fn profiles_compare_equal_regardless_of_timing() {
        let a = Profile(vec![PhaseStat {
            name: "x".into(),
            calls: 1,
            total_s: 1.0,
            self_s: 1.0,
        }]);
        let b = Profile(vec![]);
        assert_eq!(a, b);
    }
}
