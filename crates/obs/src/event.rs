//! Typed scheduler events.
//!
//! Every significant state transition in the simulator is one
//! [`SchedEvent`] wrapped in a [`TimedEvent`] carrying the simulated
//! timestamp and a per-log sequence number. Payloads hold only simulated
//! quantities (ids, GPU counts, simulated seconds) — never wall-clock
//! readings — so a run's event log is a pure function of its seed.
//!
//! Ids are raw integers (`u64` for jobs, `u32` for servers) rather than
//! the `lyra-core` newtypes: `lyra-obs` sits below every other crate in
//! the dependency graph and must not depend upwards.

use serde::{Deserialize, Serialize};

use crate::attribution::DelayCause;
use crate::audit::AuditRecord;

/// One structured scheduler event.
///
/// Fault variants carry a `kind` string that matches the corresponding
/// `FaultStats` counter field name (`server_crash` ↔ `server_crashes`,
/// …), so an event log can be cross-checked against the aggregate fault
/// accounting event-for-count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchedEvent {
    /// A job arrived and was admitted to the pending queue.
    JobAdmit {
        /// Job id.
        job: u64,
    },
    /// A queued job was launched.
    JobStart {
        /// Job id.
        job: u64,
        /// Workers granted at launch.
        workers: u32,
        /// Whether any worker landed on a loaned (inference) server.
        on_loan: bool,
        /// Servers hosting the gang.
        servers: Vec<u32>,
    },
    /// An elastic job grew by `delta` workers.
    JobScaleOut {
        /// Job id.
        job: u64,
        /// Workers added.
        delta: u32,
        /// Workers after the change.
        workers: u32,
        /// Whether any of the new workers landed on a loaned server
        /// (links the scale-out to the `LoanGrant` that enabled it).
        on_loan: bool,
        /// Servers hosting the new workers.
        servers: Vec<u32>,
    },
    /// An elastic job shrank by `delta` workers.
    JobScaleIn {
        /// Job id.
        job: u64,
        /// Workers removed.
        delta: u32,
        /// Workers after the change.
        workers: u32,
    },
    /// An elastic job's rendezvous barrier re-formed after a membership
    /// change, pausing training.
    ControllerRescale {
        /// Job id.
        job: u64,
        /// Workers after the rendezvous.
        workers: u32,
        /// Training stall charged, seconds.
        pause_s: f64,
    },
    /// Flexible workers were vacated from one server during a reclaim.
    FlexRelease {
        /// Job id.
        job: u64,
        /// Server vacated.
        server: u32,
        /// Workers released there.
        workers: u32,
    },
    /// A job was preempted (killed and re-queued).
    JobPreempt {
        /// Job id.
        job: u64,
        /// Whether it resumes from a checkpoint.
        checkpointed: bool,
        /// `DecisionId` (log `seq`) of the `ReclaimChoice` audit event
        /// whose victim ranking picked this job; `None` when the audit
        /// trail is disabled.
        decision: Option<u64>,
    },
    /// A job finished.
    JobComplete {
        /// Job id.
        job: u64,
        /// Completion time minus submission time, seconds.
        jct_s: f64,
    },
    /// A job completed after its SLO deadline (emitted right after the
    /// corresponding `JobComplete`). Deadlines never influence scheduling;
    /// this event only feeds the deadline-miss rollup.
    DeadlineMiss {
        /// Job id.
        job: u64,
        /// The deadline, seconds from trace start.
        deadline_s: f64,
        /// How late the job finished, seconds.
        late_s: f64,
    },
    /// Idle inference servers were loaned to the training cluster.
    LoanGrant {
        /// Servers loaned.
        servers: Vec<u32>,
    },
    /// The inference side demanded loaned servers back — the
    /// *loan-demand decision* that triggers a reclaim wave. Emitted
    /// before the cost search runs, so its `seq` precedes (and is the
    /// causal parent of) the wave's `ReclaimChoice` audits.
    ReclaimDemand {
        /// Servers demanded back (carried debt folded in).
        servers: u32,
    },
    /// The inference side reclaimed loaned servers.
    ReclaimGrant {
        /// Servers demanded back.
        demanded: u32,
        /// Returned by vacating flexible workers.
        returned_flex: u32,
        /// Returned because they sat idle.
        returned_idle: u32,
        /// Returned by preempting jobs.
        returned_preempt: u32,
        /// Jobs preempted to satisfy the demand.
        preempted: Vec<u64>,
        /// GPUs of collateral damage (innocent-bystander GPUs on
        /// preempted servers).
        collateral_gpus: u32,
    },
    /// A reclaim could not be fully satisfied; the shortfall carries
    /// over with a deadline.
    ReclaimCarryover {
        /// Servers still owed.
        servers: u32,
        /// Simulated deadline for the debt, seconds.
        deadline_s: f64,
    },
    /// A carried-over reclaim debt missed its deadline.
    ReclaimDeadlineMiss {
        /// Servers still owed at the deadline.
        servers: u32,
    },
    /// A training stall charged to a running job, with its typed cause
    /// (launch overhead, rendezvous, checkpoint restore, …). The engine
    /// emits one per pause it charges, so the lifecycle tracker can
    /// replay the stall arithmetic exactly.
    JobStall {
        /// Job id.
        job: u64,
        /// Why the job stalled.
        cause: DelayCause,
        /// Stall length, milliseconds.
        pause_ms: u64,
    },
    /// A running job's effective speed factor changed because of
    /// straggling servers (worker-weighted; `1.0` = back to nominal).
    JobStraggle {
        /// Job id.
        job: u64,
        /// Worker-weighted slowdown factor (`< 1.0` while straggling).
        factor: f64,
    },
    /// End-of-epoch scheduler summary, emitted when the state changed
    /// since the last emission.
    SchedulerEpoch {
        /// Jobs launched this epoch.
        launches: u32,
        /// Pending-queue depth after the epoch.
        queued: u32,
        /// Running jobs after the epoch.
        running: u32,
    },
    /// A fault-injection event; `kind` names the `FaultStats` counter it
    /// increments.
    Fault {
        /// Counter name: `injected`, `server_crash`, `worker_failure`,
        /// `straggler`, `dropped_tick`, `job_killed`,
        /// `elastic_absorbed`, `restart`, `checkpoint_restore` or
        /// `checkpoint_restore_failure`.
        kind: String,
        /// Job or server id the fault hit, when attributable.
        target: u64,
    },
    /// A recorded scheduling decision with its inputs (see
    /// [`AuditRecord`]).
    Audit(AuditRecord),
    /// An alert rule fired (`fired: true`) or resolved
    /// (`fired: false`). Emitted by the telemetry alert engine once per
    /// transition, into the same log as everything else, so alerts are
    /// replayable and golden-pinned.
    Alert {
        /// Rule name (e.g. `queue-backlog`).
        rule: String,
        /// Telemetry series the rule watches (e.g. `queue.depth`).
        series: String,
        /// Sampled value that drove the transition.
        value: f64,
        /// The rule's threshold.
        threshold: f64,
        /// `true` on fire, `false` on resolve.
        fired: bool,
    },
}

/// Every `kind_name()` a [`SchedEvent`] can report, in declaration
/// order — the authoritative list `events --filter kind=<name>`
/// validates against.
pub const KIND_NAMES: &[&str] = &[
    "JobAdmit",
    "JobStart",
    "JobScaleOut",
    "JobScaleIn",
    "ControllerRescale",
    "FlexRelease",
    "JobPreempt",
    "JobComplete",
    "DeadlineMiss",
    "LoanGrant",
    "ReclaimDemand",
    "ReclaimGrant",
    "ReclaimCarryover",
    "ReclaimDeadlineMiss",
    "JobStall",
    "JobStraggle",
    "SchedulerEpoch",
    "Fault",
    "Audit",
    "Alert",
];

impl SchedEvent {
    /// The variant name, as used by `events --filter kind=<name>`.
    pub fn kind_name(&self) -> &'static str {
        match self {
            SchedEvent::JobAdmit { .. } => "JobAdmit",
            SchedEvent::JobStart { .. } => "JobStart",
            SchedEvent::JobScaleOut { .. } => "JobScaleOut",
            SchedEvent::JobScaleIn { .. } => "JobScaleIn",
            SchedEvent::ControllerRescale { .. } => "ControllerRescale",
            SchedEvent::FlexRelease { .. } => "FlexRelease",
            SchedEvent::JobPreempt { .. } => "JobPreempt",
            SchedEvent::JobComplete { .. } => "JobComplete",
            SchedEvent::DeadlineMiss { .. } => "DeadlineMiss",
            SchedEvent::LoanGrant { .. } => "LoanGrant",
            SchedEvent::ReclaimDemand { .. } => "ReclaimDemand",
            SchedEvent::ReclaimGrant { .. } => "ReclaimGrant",
            SchedEvent::ReclaimCarryover { .. } => "ReclaimCarryover",
            SchedEvent::ReclaimDeadlineMiss { .. } => "ReclaimDeadlineMiss",
            SchedEvent::JobStall { .. } => "JobStall",
            SchedEvent::JobStraggle { .. } => "JobStraggle",
            SchedEvent::SchedulerEpoch { .. } => "SchedulerEpoch",
            SchedEvent::Fault { .. } => "Fault",
            SchedEvent::Audit(_) => "Audit",
            SchedEvent::Alert { .. } => "Alert",
        }
    }

    /// The [`DelayCause`] this event names, if any — the `JobStall`
    /// cause, or the cause recorded inside an audit record (the first
    /// one, for multi-entry audits). Used by
    /// `events --filter cause=<name>`.
    pub fn cause(&self) -> Option<DelayCause> {
        match self {
            SchedEvent::JobStall { cause, .. } => Some(*cause),
            SchedEvent::Audit(rec) => match rec {
                AuditRecord::Phase1Order { order, .. } => {
                    order.iter().find_map(|e| e.cause)
                }
                AuditRecord::Phase2Mckp { groups, .. } => {
                    groups.iter().find_map(|g| g.cause)
                }
                AuditRecord::PlacementDecision { .. } => None,
                AuditRecord::ReclaimChoice { cause, .. } => *cause,
            },
            _ => None,
        }
    }

    /// Whether this event references `job` — directly, via a preemption
    /// list, or inside an audit record. (`Fault` targets are job *or*
    /// server ids depending on the kind; the filter matches either.)
    pub fn touches_job(&self, job: u64) -> bool {
        match self {
            SchedEvent::JobAdmit { job: j }
            | SchedEvent::JobStart { job: j, .. }
            | SchedEvent::JobScaleOut { job: j, .. }
            | SchedEvent::JobScaleIn { job: j, .. }
            | SchedEvent::ControllerRescale { job: j, .. }
            | SchedEvent::FlexRelease { job: j, .. }
            | SchedEvent::JobPreempt { job: j, .. }
            | SchedEvent::JobComplete { job: j, .. }
            | SchedEvent::DeadlineMiss { job: j, .. }
            | SchedEvent::JobStall { job: j, .. }
            | SchedEvent::JobStraggle { job: j, .. } => *j == job,
            SchedEvent::ReclaimGrant { preempted, .. } => preempted.contains(&job),
            SchedEvent::Fault { target, .. } => *target == job,
            SchedEvent::LoanGrant { .. }
            | SchedEvent::ReclaimDemand { .. }
            | SchedEvent::ReclaimCarryover { .. }
            | SchedEvent::ReclaimDeadlineMiss { .. }
            | SchedEvent::SchedulerEpoch { .. }
            | SchedEvent::Alert { .. } => false,
            SchedEvent::Audit(rec) => match rec {
                AuditRecord::Phase1Order { order, .. } => order.iter().any(|e| e.job == job),
                AuditRecord::Phase2Mckp { groups, .. } => groups.iter().any(|g| g.job == job),
                AuditRecord::PlacementDecision { job: j, .. } => *j == job,
                AuditRecord::ReclaimChoice { preempted, .. } => preempted.contains(&job),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_list_is_unique_and_covers_alert() {
        let mut seen = std::collections::BTreeSet::new();
        for k in KIND_NAMES {
            assert!(seen.insert(*k), "duplicate kind {k}");
        }
        let alert = SchedEvent::Alert {
            rule: "queue-backlog".to_string(),
            series: "queue.depth".to_string(),
            value: 9.0,
            threshold: 4.0,
            fired: true,
        };
        assert!(KIND_NAMES.contains(&alert.kind_name()));
        assert!(!alert.touches_job(0));
    }
}

/// A [`SchedEvent`] stamped with simulated time and a sequence number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Simulated time, milliseconds.
    pub time_ms: u64,
    /// Monotonic per-log sequence number (total order within one run).
    pub seq: u64,
    /// The event payload.
    pub event: SchedEvent,
}
