//! The decision-provenance graph: nodes are scheduling decisions, edges
//! are causal links between them.
//!
//! Every node is keyed by its [`DecisionId`] — the log sequence number
//! of the [`TimedEvent`](crate::TimedEvent) that recorded the decision.
//! Sequence numbers are persisted in the JSONL lines themselves and in
//! event-log checkpoints, so a DecisionId is stable across live runs,
//! log replay, and crash/resume: the same decision carries the same id
//! everywhere.
//!
//! Because a cause is always logged before its effects, every edge runs
//! from a lower sequence number to a higher one; the graph is acyclic
//! by construction (and [`ProvenanceGraph::is_acyclic`] checks the
//! invariant explicitly).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Stable identifier of a scheduling decision: the log `seq` of the
/// event that recorded it.
pub type DecisionId = u64;

/// What kind of decision (or decision-relevant lifecycle event) a node
/// represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeKind {
    /// A job was admitted to the pending queue (`JobAdmit`).
    Admit,
    /// A phase-1 shortest-job-first ranking (`Phase1Order` audit).
    Rank,
    /// A phase-2 MCKP group verdict (`Phase2Mckp` audit).
    MckpVerdict,
    /// A best-fit-decreasing placement attempt (`PlacementDecision`
    /// audit).
    Placement,
    /// A gang launch (`JobStart`).
    Launch,
    /// An elastic scale-out (`JobScaleOut`).
    ScaleOut,
    /// Idle inference capacity was loaned out (`LoanGrant`).
    LoanGrant,
    /// The inference side demanded loaned servers back
    /// (`ReclaimDemand`) — the loan-demand decision that starts a
    /// reclaim wave.
    ReclaimDemand,
    /// A cost-guided victim ranking picked a server to vacate
    /// (`ReclaimChoice` audit).
    ReclaimChoice,
    /// A job was preempted (`JobPreempt`).
    Preempt,
    /// A fault killed a job (`Fault { kind: "job_killed" }`).
    Kill,
    /// A killed job was rescheduled for restart
    /// (`Fault { kind: "restart" }`).
    Restart,
}

impl NodeKind {
    /// Human-readable label used by the `why` / `blame` renderers.
    pub fn label(&self) -> &'static str {
        match self {
            NodeKind::Admit => "admit",
            NodeKind::Rank => "phase1-rank",
            NodeKind::MckpVerdict => "mckp-verdict",
            NodeKind::Placement => "placement",
            NodeKind::Launch => "launch",
            NodeKind::ScaleOut => "scale-out",
            NodeKind::LoanGrant => "loan-grant",
            NodeKind::ReclaimDemand => "loan-demand",
            NodeKind::ReclaimChoice => "victim-ranking",
            NodeKind::Preempt => "preempt",
            NodeKind::Kill => "fault-kill",
            NodeKind::Restart => "restart",
        }
    }
}

/// The causal relationship an edge encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Admission (or a prior preemption/restart) fed a phase-1 ranking.
    Rank,
    /// A ranking fed an MCKP group verdict.
    MckpVerdict,
    /// A verdict fed a placement attempt.
    Placement,
    /// The decision chain culminated in a launch.
    Launch,
    /// A loan grant enabled this launch or elastic scale-out (one of
    /// its workers landed on a loaned server).
    LoanEnabled,
    /// A loan-demand decision triggered this victim ranking.
    ReclaimRanking,
    /// A victim ranking preempted this specific job.
    Preemption,
    /// A fault kill led to this restart decision.
    Restart,
    /// A restart decision led to this re-placement (the job's next
    /// launch).
    Replacement,
}

impl EdgeKind {
    /// Human-readable label used by the `why` renderer.
    pub fn label(&self) -> &'static str {
        match self {
            EdgeKind::Rank => "ranked",
            EdgeKind::MckpVerdict => "mckp",
            EdgeKind::Placement => "placed",
            EdgeKind::Launch => "launched",
            EdgeKind::LoanEnabled => "loan-enabled",
            EdgeKind::ReclaimRanking => "reclaim-ranking",
            EdgeKind::Preemption => "preempted",
            EdgeKind::Restart => "restarted",
            EdgeKind::Replacement => "re-placed",
        }
    }
}

/// One decision node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceNode {
    /// The decision's stable id (log `seq`).
    pub id: DecisionId,
    /// Simulated time the decision was recorded, milliseconds.
    pub time_ms: u64,
    /// What kind of decision this is.
    pub kind: NodeKind,
    /// The job the decision concerns, when it concerns exactly one.
    pub job: Option<u64>,
}

/// One causal edge; `from` is the cause, `to` the effect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceEdge {
    /// Cause decision.
    pub from: DecisionId,
    /// Effect decision.
    pub to: DecisionId,
    /// What the link means.
    pub kind: EdgeKind,
}

/// The causal graph of scheduling decisions for one run (or one log).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceGraph {
    nodes: BTreeMap<DecisionId, ProvenanceNode>,
    edges: Vec<ProvenanceEdge>,
}

impl ProvenanceGraph {
    /// Inserts a node (last write wins; ids are unique in practice).
    pub fn add_node(&mut self, node: ProvenanceNode) {
        self.nodes.insert(node.id, node);
    }

    /// Appends an edge.
    pub fn add_edge(&mut self, from: DecisionId, to: DecisionId, kind: EdgeKind) {
        self.edges.push(ProvenanceEdge { from, to, kind });
    }

    /// Looks up a node by id.
    pub fn node(&self, id: DecisionId) -> Option<&ProvenanceNode> {
        self.nodes.get(&id)
    }

    /// All nodes, ascending by id.
    pub fn nodes(&self) -> impl Iterator<Item = &ProvenanceNode> {
        self.nodes.values()
    }

    /// All edges, in insertion (emission) order.
    pub fn edges(&self) -> &[ProvenanceEdge] {
        &self.edges
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Edges whose effect is `id`, in insertion order.
    pub fn incoming(&self, id: DecisionId) -> impl Iterator<Item = &ProvenanceEdge> {
        self.edges.iter().filter(move |e| e.to == id)
    }

    /// Edges whose cause is `id`, in insertion order.
    pub fn outgoing(&self, id: DecisionId) -> impl Iterator<Item = &ProvenanceEdge> {
        self.edges.iter().filter(move |e| e.from == id)
    }

    /// The latest node of `kind` for `job` recorded at or before
    /// `time_ms` — the anchor lookup `why`/`blame` use to join a delay
    /// interval back to the decision that opened it.
    pub fn latest_for_job(
        &self,
        job: u64,
        kind: NodeKind,
        time_ms: u64,
    ) -> Option<&ProvenanceNode> {
        self.nodes
            .values()
            .rfind(|n| n.job == Some(job) && n.kind == kind && n.time_ms <= time_ms)
    }

    /// Checks the causal-order invariant: every edge runs from a lower
    /// sequence number (cause) to a higher one (effect), and both
    /// endpoints exist. This is strictly stronger than acyclicity.
    pub fn is_acyclic(&self) -> bool {
        self.edges.iter().all(|e| {
            e.from < e.to && self.nodes.contains_key(&e.from) && self.nodes.contains_key(&e.to)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: DecisionId, kind: NodeKind, job: Option<u64>) -> ProvenanceNode {
        ProvenanceNode {
            id,
            time_ms: id * 10,
            kind,
            job,
        }
    }

    #[test]
    fn edges_and_lookups_work() {
        let mut g = ProvenanceGraph::default();
        g.add_node(node(1, NodeKind::ReclaimDemand, None));
        g.add_node(node(2, NodeKind::ReclaimChoice, None));
        g.add_node(node(3, NodeKind::Preempt, Some(7)));
        g.add_edge(1, 2, EdgeKind::ReclaimRanking);
        g.add_edge(2, 3, EdgeKind::Preemption);
        assert!(g.is_acyclic());
        assert_eq!(g.incoming(3).count(), 1);
        assert_eq!(g.outgoing(1).count(), 1);
        assert_eq!(
            g.latest_for_job(7, NodeKind::Preempt, 30).map(|n| n.id),
            Some(3)
        );
        assert_eq!(g.latest_for_job(7, NodeKind::Preempt, 29), None);
    }

    #[test]
    fn backwards_edge_breaks_acyclicity() {
        let mut g = ProvenanceGraph::default();
        g.add_node(node(1, NodeKind::Admit, Some(1)));
        g.add_node(node(2, NodeKind::Launch, Some(1)));
        g.add_edge(2, 1, EdgeKind::Launch);
        assert!(!g.is_acyclic());
    }

    #[test]
    fn dangling_edge_breaks_acyclicity() {
        let mut g = ProvenanceGraph::default();
        g.add_node(node(1, NodeKind::Admit, Some(1)));
        g.add_edge(1, 99, EdgeKind::Launch);
        assert!(!g.is_acyclic());
    }

    #[test]
    fn serde_round_trip_preserves_graph() {
        let mut g = ProvenanceGraph::default();
        g.add_node(node(4, NodeKind::LoanGrant, None));
        g.add_node(node(9, NodeKind::ScaleOut, Some(2)));
        g.add_edge(4, 9, EdgeKind::LoanEnabled);
        let json = serde_json::to_string(&g).expect("serialize");
        let back: ProvenanceGraph = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, g);
    }
}
