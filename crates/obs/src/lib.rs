#![warn(missing_docs)]

//! # lyra-obs
//!
//! Zero-dependency observability for the Lyra stack (vendored `serde` /
//! `serde_json` only — the build stays fully offline).
//!
//! Production schedulers live or die by their visibility into every
//! placement and preemption decision; this crate gives the reproduction
//! the same four pillars a real deployment would have:
//!
//! * [`event`] + [`log`] — a **structured event log**: typed, serialisable
//!   scheduler events emitted as JSON Lines into a ring buffer with an
//!   optional file sink. Event payloads carry only simulated quantities,
//!   so two runs with the same seed produce byte-identical logs.
//! * [`registry`] — a **metrics registry**: counters, gauges and
//!   fixed-bucket histograms registered by name and snapshotted per
//!   simulated hour, so time series come from one place instead of
//!   bespoke report fields.
//! * [`timeseries`] + [`alerts`] + [`prom`] — **continuous telemetry**:
//!   per-epoch scheduler health gauges sampled into fixed-capacity ring
//!   series with deterministic decimation (bounded memory at 1M-job
//!   scale), fixed log2-bucket histograms, a threshold/sustained-window
//!   alert engine emitting typed `Alert` events into the log, and
//!   Prometheus text exposition + CSV export — all byte-reproducible
//!   under the same seed.
//! * [`span`] — **span timing** for the hot paths (MCKP DP, best-fit
//!   placement, reclaim cost search, engine ticks), aggregated into a
//!   per-phase self-time profile.
//! * [`audit`] — a **decision audit trail**: phase-1 orderings, phase-2
//!   MCKP allocations, placement and reclaim choices record their inputs
//!   so [`explain`] can reconstruct the causal chain for one job.
//!
//! On top of the event log sits the **causal delay-attribution layer**:
//! [`lifecycle`] replays the stream through a per-job state machine,
//! [`attribution`] decomposes every job's completion time into
//! cause-attributed intervals that reconcile exactly (Σ intervals ==
//! completion − arrival, checked end-of-run), and [`chrome`] exports
//! the whole run as Chrome/Perfetto `trace_event` JSON.
//!
//! [`provenance`] + [`graph`] add **decision provenance**: every
//! scheduling decision gets a stable `DecisionId` (its log `seq`) and
//! the events form a causal graph — admission → rank → MCKP verdict →
//! placement → launch per job, plus the cross-job edges (loan-grant →
//! the scale-out it enabled, loan-demand → victim ranking → the
//! preemptions it triggered, fault → restart → re-placement). The graph
//! builds online (checkpoint-safe observer state) or offline from any
//! JSONL log, and renders as `why`/`blame` reports and Perfetto flow
//! arrows.
//!
//! [`output`] is the small experiment-output writer used by the bench
//! CLI's `--quiet` / `--json` modes.
//!
//! The span and audit collectors are thread-local: the simulator runs one
//! simulation per thread (the bench harness fans scenarios out with
//! `std::thread::scope`), so per-thread state isolates concurrent runs
//! without any handle threading through the algorithm crates.

pub mod alerts;
pub mod attribution;
pub mod audit;
pub mod chrome;
pub mod event;
pub mod explain;
pub mod graph;
pub mod lifecycle;
pub mod log;
pub mod output;
pub mod provenance;
pub mod prom;
pub mod registry;
pub mod span;
pub mod timeseries;

pub use alerts::{default_rules, AlertCondition, AlertEngine, AlertRule, AlertTransition};
pub use attribution::{
    render_job, render_top, summarize, AttributedInterval, AttributionSummary, CauseStat,
    DelayCause, JobAttribution,
};
pub use audit::{
    AuditRecord, MckpGroupAudit, Phase1Entry, PlacementAlternative, ReclaimCandidate,
};
pub use chrome::{
    export_chrome_trace, export_provenance_trace, validate_chrome_trace, ChromeTraceStats,
};
pub use event::{SchedEvent, TimedEvent, KIND_NAMES};
pub use explain::{explain_job, parse_log};
pub use graph::{
    DecisionId, EdgeKind, NodeKind, ProvenanceEdge, ProvenanceGraph, ProvenanceNode,
};
pub use lifecycle::{attribute_log, LifecycleTracker};
pub use log::{EventLog, EventLogState};
pub use provenance::{
    blame_from_log, build_provenance, render_blame, render_why, why_from_log, ProvenanceTracker,
};
pub use output::OutputMode;
pub use prom::render_prometheus;
pub use registry::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot, DEFAULT_HISTOGRAM_BOUNDS};
pub use span::{PhaseStat, Profile, SpanGuard};
pub use timeseries::{Log2Histogram, RingSeries, SeriesPoint, Telemetry};
