//! Decision audit trail.
//!
//! The scheduling algorithms in `lyra-core` are pure functions; their
//! decisions are explainable only if the *inputs* to each choice are
//! recorded at the moment the choice is made. This module provides the
//! record types and a thread-local collector the algorithm crates write
//! into, so the decision sites need no plumbing of logger handles. The
//! simulation engine drains the collector after each call into the
//! policy/orchestrator and folds the records into its event log.
//!
//! Recording is off by default and costs one thread-local boolean check;
//! the engine enables it only when an observer with auditing is
//! attached.

use std::cell::RefCell;

use serde::{Deserialize, Serialize};

use crate::attribution::DelayCause;

/// One job considered by the phase-1 (inelastic/base) ordering pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase1Entry {
    /// Job id.
    pub job: u64,
    /// Estimated remaining running time used as the SJF key, seconds.
    pub est_running_time_s: f64,
    /// Base GPUs the job asks for in phase 1.
    pub base_gpus: u32,
    /// Whether capacity sufficed to admit it this round.
    pub admitted: bool,
    /// Delay cause charged when the job was deferred
    /// ([`DelayCause::GpuScarcity`]); `None` when admitted.
    pub cause: Option<DelayCause>,
}

/// One elastic job's group in the phase-2 multiple-choice knapsack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MckpGroupAudit {
    /// Job id.
    pub job: u64,
    /// JCT-reduction value of each worker-count option, in option order.
    pub values: Vec<f64>,
    /// Extra workers the solver granted (0 = keep base allocation).
    pub chosen_extra: u32,
    /// Value of the chosen option (0 when nothing was chosen).
    pub chosen_value: f64,
    /// Delay cause charged when the knapsack granted nothing despite
    /// available options ([`DelayCause::MckpDenial`]); `None` when
    /// extra workers were granted or nothing was asked.
    pub cause: Option<DelayCause>,
}

/// A rejected placement alternative and why it lost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementAlternative {
    /// Server id.
    pub server: u32,
    /// Free GPUs the server had when the fit was evaluated (the
    /// best-fit cost: more leftover = worse fit).
    pub free_gpus: u32,
}

/// One candidate server in a reclaim cost search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReclaimCandidate {
    /// Server id.
    pub server: u32,
    /// Preemption cost under the active cost model.
    pub cost: f64,
    /// Collateral GPUs preempting this server would waste.
    pub collateral_gpus: u32,
}

/// One recorded scheduling decision with the inputs that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AuditRecord {
    /// The phase-1 shortest-job-first (or FIFO/LAS) admission pass.
    Phase1Order {
        /// GPUs available before the pass.
        capacity_gpus: u32,
        /// Jobs in the order they were considered.
        order: Vec<Phase1Entry>,
    },
    /// The phase-2 MCKP allocation over elastic jobs' flexible demand.
    Phase2Mckp {
        /// Leftover GPUs offered to the knapsack.
        capacity_gpus: u32,
        /// One group per elastic job, with per-option values.
        groups: Vec<MckpGroupAudit>,
        /// Total value of the solution.
        total_value: f64,
        /// Total weight (GPUs) of the solution.
        total_weight: u32,
    },
    /// A best-fit-decreasing placement decision for one worker.
    PlacementDecision {
        /// Job id.
        job: u64,
        /// Worker role: `inelastic`, `elastic_base` or
        /// `elastic_flexible`.
        role: String,
        /// GPUs the worker needs.
        gpus: u32,
        /// Server chosen, or `None` if placement failed.
        chosen: Option<u32>,
        /// Free GPUs the chosen server had (best-fit cost).
        chosen_free_gpus: u32,
        /// Rejected alternatives with their costs (capped; best-first).
        alternatives: Vec<PlacementAlternative>,
    },
    /// One server pick in the greedy reclaim cost search.
    ReclaimChoice {
        /// Servers still needed when the pick was made.
        need: u32,
        /// Candidate servers with their costs (capped; order follows the
        /// request's candidate list).
        candidates: Vec<ReclaimCandidate>,
        /// Server picked.
        chosen: u32,
        /// Jobs preempted by taking it.
        preempted: Vec<u64>,
        /// Delay cause charged to the preempted jobs
        /// ([`DelayCause::ReclaimPreemption`]); `None` when the pick
        /// preempted nobody.
        cause: Option<DelayCause>,
    },
}

thread_local! {
    static AUDIT: RefCell<AuditState> = const { RefCell::new(AuditState { enabled: false, records: Vec::new() }) };
}

struct AuditState {
    enabled: bool,
    records: Vec<AuditRecord>,
}

/// Enables or disables audit collection on this thread.
pub fn set_enabled(enabled: bool) {
    AUDIT.with(|a| {
        let mut a = a.borrow_mut();
        a.enabled = enabled;
        if !enabled {
            a.records.clear();
        }
    });
}

/// Whether audit collection is enabled on this thread. Decision sites
/// check this before building a record so disabled runs pay only the
/// boolean.
pub fn is_enabled() -> bool {
    AUDIT.with(|a| a.borrow().enabled)
}

/// Appends a record to this thread's audit buffer (no-op when
/// collection is disabled).
pub fn record(rec: AuditRecord) {
    AUDIT.with(|a| {
        let mut a = a.borrow_mut();
        if a.enabled {
            a.records.push(rec);
        }
    });
}

/// Takes all records buffered on this thread since the last drain.
pub fn drain() -> Vec<AuditRecord> {
    AUDIT.with(|a| std::mem::take(&mut a.borrow_mut().records))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_records_when_enabled() {
        assert!(!is_enabled());
        record(AuditRecord::Phase1Order {
            capacity_gpus: 8,
            order: vec![],
        });
        assert!(drain().is_empty());

        set_enabled(true);
        record(AuditRecord::Phase1Order {
            capacity_gpus: 8,
            order: vec![],
        });
        let drained = drain();
        assert_eq!(drained.len(), 1);
        assert!(drain().is_empty(), "drain empties the buffer");
        set_enabled(false);
    }

    #[test]
    fn disabling_clears_pending_records() {
        set_enabled(true);
        record(AuditRecord::ReclaimChoice {
            need: 1,
            candidates: vec![],
            chosen: 3,
            preempted: vec![],
            cause: None,
        });
        set_enabled(false);
        assert!(drain().is_empty());
    }
}
