//! Per-job lifecycle tracking: the event stream → attributed intervals.
//!
//! [`LifecycleTracker`] replays [`SchedEvent`]s — online inside the
//! simulation observer (so ring-buffer drops cannot lose attribution),
//! or offline over a parsed JSONL log — and drives a small per-job state
//! machine:
//!
//! ```text
//! pending ──start──▶ running ──preempt/fault──▶ pending ──start──▶ …
//!                       │
//!                    complete
//! ```
//!
//! Pending time is charged to the cause that put the job in the queue
//! (phase-1 GPU scarcity on arrival, reclaim preemption, fault
//! restart). Running time is split by the stall windows the engine
//! announces via `JobStall` events (launch overhead, rendezvous,
//! checkpoint restore, …), replaying the engine's own stall arithmetic
//! `stall_until = max(stall_until, now) + pause` in integer
//! milliseconds; whatever remains is `Productive`, or
//! `StragglerSlowdown` while a `JobStraggle` episode is active. The
//! result is an exact partition of each job's lifetime — see
//! [`JobAttribution::reconcile`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::attribution::{AttributedInterval, DelayCause, JobAttribution};
use crate::event::{SchedEvent, TimedEvent};

/// A pending stall window `[start_ms, end_ms)` with its cause, not yet
/// folded into a closed segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct StallWindow {
    start_ms: u64,
    end_ms: u64,
    cause: DelayCause,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum LifeState {
    Pending(DelayCause),
    Running,
    Done,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct JobLife {
    arrival_ms: u64,
    completion_ms: Option<u64>,
    state: LifeState,
    /// Start of the segment currently being accumulated.
    segment_start_ms: u64,
    /// Whether a straggler episode is active (running state only).
    straggling: bool,
    /// Mirror of the engine's `stall_until` cursor for this run period.
    stall_until_ms: u64,
    /// Stall windows not yet consumed by a closed segment (time order).
    stalls: Vec<StallWindow>,
    intervals: Vec<AttributedInterval>,
}

impl JobLife {
    fn new(arrival_ms: u64) -> Self {
        JobLife {
            arrival_ms,
            completion_ms: None,
            state: LifeState::Pending(DelayCause::GpuScarcity),
            segment_start_ms: arrival_ms,
            straggling: false,
            stall_until_ms: arrival_ms,
            stalls: Vec::new(),
            intervals: Vec::new(),
        }
    }

    fn push(&mut self, start_ms: u64, end_ms: u64, cause: DelayCause) {
        if end_ms <= start_ms {
            return;
        }
        // Merge adjacent same-cause spans so tables stay compact.
        if let Some(last) = self.intervals.last_mut() {
            if last.end_ms == start_ms && last.cause == cause {
                last.end_ms = end_ms;
                return;
            }
        }
        self.intervals.push(AttributedInterval {
            start_ms,
            end_ms,
            cause,
        });
    }

    /// Closes the current segment at `t`, splitting a running segment by
    /// its stall windows and labelling the remainder productive (or
    /// straggling).
    fn close_segment(&mut self, t: u64) {
        let start = self.segment_start_ms;
        let t = t.max(start);
        match self.state {
            LifeState::Pending(cause) => self.push(start, t, cause),
            LifeState::Running => {
                let base = if self.straggling {
                    DelayCause::StragglerSlowdown
                } else {
                    DelayCause::Productive
                };
                let mut cursor = start;
                let mut remaining = Vec::new();
                let stalls = std::mem::take(&mut self.stalls);
                for w in &stalls {
                    let clip_start = w.start_ms.max(cursor).min(t);
                    let clip_end = w.end_ms.min(t);
                    if clip_end > clip_start {
                        self.push(cursor, clip_start, base);
                        self.push(clip_start, clip_end, w.cause);
                        cursor = clip_end;
                    }
                    if w.end_ms > t {
                        // Keep the unconsumed remainder for the next
                        // segment of this run period.
                        remaining.push(StallWindow {
                            start_ms: w.start_ms.max(t),
                            end_ms: w.end_ms,
                            cause: w.cause,
                        });
                    }
                }
                self.push(cursor, t, base);
                self.stalls = remaining;
            }
            LifeState::Done => {}
        }
        self.segment_start_ms = t;
    }
}

/// Assembles per-job [`JobAttribution`]s from a [`SchedEvent`] stream.
///
/// Feed events in emission order via [`observe`](Self::observe), then
/// call [`finish`](Self::finish) once with the end-of-observation time;
/// [`into_attributions`](Self::into_attributions) yields the
/// decompositions sorted by job id.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LifecycleTracker {
    jobs: BTreeMap<u64, JobLife>,
    finished: bool,
}

impl LifecycleTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one event. Events must arrive in non-decreasing time
    /// order (the engine's emission order satisfies this).
    pub fn observe(&mut self, time_ms: u64, event: &SchedEvent) {
        match event {
            SchedEvent::JobAdmit { job } => {
                self.jobs.entry(*job).or_insert_with(|| JobLife::new(time_ms));
            }
            SchedEvent::JobStart { job, .. } => {
                let life = self
                    .jobs
                    .entry(*job)
                    .or_insert_with(|| JobLife::new(time_ms));
                life.close_segment(time_ms);
                life.state = LifeState::Running;
                life.straggling = false;
                life.stall_until_ms = time_ms;
                life.stalls.clear();
            }
            SchedEvent::JobStall {
                job,
                cause,
                pause_ms,
            } => {
                if let Some(life) = self.jobs.get_mut(job) {
                    if life.state == LifeState::Running && *pause_ms > 0 {
                        let start = life.stall_until_ms.max(time_ms);
                        life.stall_until_ms = start + pause_ms;
                        life.stalls.push(StallWindow {
                            start_ms: start,
                            end_ms: start + pause_ms,
                            cause: *cause,
                        });
                    }
                }
            }
            SchedEvent::JobStraggle { job, factor } => {
                if let Some(life) = self.jobs.get_mut(job) {
                    if life.state == LifeState::Running {
                        let active = *factor < 1.0;
                        if active != life.straggling {
                            life.close_segment(time_ms);
                            life.straggling = active;
                        }
                    }
                }
            }
            SchedEvent::JobPreempt { job, .. } => {
                if let Some(life) = self.jobs.get_mut(job) {
                    if life.state == LifeState::Running {
                        life.close_segment(time_ms);
                        life.state = LifeState::Pending(DelayCause::ReclaimPreemption);
                    }
                }
            }
            SchedEvent::Fault { kind, target } if kind == "job_killed" => {
                if let Some(life) = self.jobs.get_mut(target) {
                    if life.state == LifeState::Running {
                        life.close_segment(time_ms);
                        life.state = LifeState::Pending(DelayCause::FaultRestart);
                    }
                }
            }
            SchedEvent::JobComplete { job, .. } => {
                if let Some(life) = self.jobs.get_mut(job) {
                    life.close_segment(time_ms);
                    life.completion_ms = Some(time_ms);
                    life.state = LifeState::Done;
                }
            }
            _ => {}
        }
    }

    /// Closes every still-open job at `end_ms` (jobs that never
    /// completed keep `completion_ms = None`).
    pub fn finish(&mut self, end_ms: u64) {
        if self.finished {
            return;
        }
        for life in self.jobs.values_mut() {
            if life.state != LifeState::Done {
                life.close_segment(end_ms);
                life.state = LifeState::Done;
            }
        }
        self.finished = true;
    }

    /// Consumes the tracker, yielding per-job attributions sorted by id.
    /// Call [`finish`](Self::finish) first.
    pub fn into_attributions(self) -> Vec<JobAttribution> {
        self.jobs
            .into_iter()
            .map(|(job, life)| JobAttribution {
                job,
                arrival_ms: life.arrival_ms,
                completion_ms: life.completion_ms,
                intervals: life.intervals,
            })
            .collect()
    }
}

/// Convenience: replays a parsed log end-to-end and returns the per-job
/// attributions (end of observation = last event timestamp).
pub fn attribute_log(events: &[TimedEvent]) -> Vec<JobAttribution> {
    let mut tracker = LifecycleTracker::new();
    let mut last_ms = 0;
    for ev in events {
        tracker.observe(ev.time_ms, &ev.event);
        last_ms = last_ms.max(ev.time_ms);
    }
    tracker.finish(last_ms);
    tracker.into_attributions()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(events: &[(u64, SchedEvent)]) -> Vec<JobAttribution> {
        let timed: Vec<TimedEvent> = events
            .iter()
            .enumerate()
            .map(|(i, (t, e))| TimedEvent {
                time_ms: *t,
                seq: i as u64,
                event: e.clone(),
            })
            .collect();
        attribute_log(&timed)
    }

    fn start(job: u64) -> SchedEvent {
        SchedEvent::JobStart {
            job,
            workers: 1,
            on_loan: false,
            servers: vec![0],
        }
    }

    #[test]
    fn queue_launch_and_stalls_partition_exactly() {
        let attrs = run(&[
            (0, SchedEvent::JobAdmit { job: 7 }),
            (1_000, start(7)),
            (
                1_000,
                SchedEvent::JobStall {
                    job: 7,
                    cause: DelayCause::LaunchOverhead,
                    pause_ms: 500,
                },
            ),
            (
                4_000,
                SchedEvent::JobStall {
                    job: 7,
                    cause: DelayCause::Rendezvous,
                    pause_ms: 250,
                },
            ),
            (10_000, SchedEvent::JobComplete { job: 7, jct_s: 10.0 }),
        ]);
        assert_eq!(attrs.len(), 1);
        let a = &attrs[0];
        a.reconcile().expect("partition is exact");
        assert_eq!(a.completion_ms, Some(10_000));
        assert_eq!(a.attributed_ms(), 10_000);
        let totals = a.cause_totals_ms();
        assert!(totals.contains(&(DelayCause::GpuScarcity, 1_000)));
        assert!(totals.contains(&(DelayCause::LaunchOverhead, 500)));
        assert!(totals.contains(&(DelayCause::Rendezvous, 250)));
        assert!(totals.contains(&(DelayCause::Productive, 8_250)));
    }

    #[test]
    fn preemption_requeues_with_reclaim_cause() {
        let attrs = run(&[
            (0, SchedEvent::JobAdmit { job: 1 }),
            (100, start(1)),
            (
                5_000,
                SchedEvent::JobPreempt {
                    job: 1,
                    checkpointed: true,
                    decision: None,
                },
            ),
            (8_000, start(1)),
            (
                8_000,
                SchedEvent::JobStall {
                    job: 1,
                    cause: DelayCause::CheckpointRestore,
                    pause_ms: 1_000,
                },
            ),
            (12_000, SchedEvent::JobComplete { job: 1, jct_s: 12.0 }),
        ]);
        let a = &attrs[0];
        a.reconcile().expect("exact");
        let totals = a.cause_totals_ms();
        assert!(totals.contains(&(DelayCause::ReclaimPreemption, 3_000)));
        assert!(totals.contains(&(DelayCause::CheckpointRestore, 1_000)));
    }

    #[test]
    fn fault_kill_requeues_with_fault_cause_and_straggle_splits() {
        let attrs = run(&[
            (0, SchedEvent::JobAdmit { job: 2 }),
            (0, start(2)),
            (
                2_000,
                SchedEvent::JobStraggle {
                    job: 2,
                    factor: 0.5,
                },
            ),
            (
                4_000,
                SchedEvent::JobStraggle {
                    job: 2,
                    factor: 1.0,
                },
            ),
            (
                6_000,
                SchedEvent::Fault {
                    kind: "job_killed".to_string(),
                    target: 2,
                },
            ),
            (9_000, start(2)),
            (10_000, SchedEvent::JobComplete { job: 2, jct_s: 10.0 }),
        ]);
        let a = &attrs[0];
        a.reconcile().expect("exact");
        let totals = a.cause_totals_ms();
        assert!(totals.contains(&(DelayCause::StragglerSlowdown, 2_000)));
        assert!(totals.contains(&(DelayCause::FaultRestart, 3_000)));
        assert!(totals.contains(&(DelayCause::Productive, 5_000)));
    }

    #[test]
    fn overlapping_stalls_replay_engine_arithmetic() {
        // Two stalls announced at the same instant queue back-to-back,
        // exactly like the engine's stall_until = max(stall_until, now)
        // + pause.
        let attrs = run(&[
            (0, SchedEvent::JobAdmit { job: 3 }),
            (0, start(3)),
            (
                1_000,
                SchedEvent::JobStall {
                    job: 3,
                    cause: DelayCause::Rendezvous,
                    pause_ms: 2_000,
                },
            ),
            (
                1_000,
                SchedEvent::JobStall {
                    job: 3,
                    cause: DelayCause::LoanScaleIn,
                    pause_ms: 1_000,
                },
            ),
            (10_000, SchedEvent::JobComplete { job: 3, jct_s: 10.0 }),
        ]);
        let a = &attrs[0];
        a.reconcile().expect("exact");
        let totals = a.cause_totals_ms();
        assert!(totals.contains(&(DelayCause::Rendezvous, 2_000)));
        assert!(totals.contains(&(DelayCause::LoanScaleIn, 1_000)));
        assert!(totals.contains(&(DelayCause::Productive, 7_000)));
    }

    #[test]
    fn incomplete_jobs_close_at_end_of_observation() {
        let attrs = run(&[
            (0, SchedEvent::JobAdmit { job: 4 }),
            (500, start(4)),
            (9_000, SchedEvent::JobAdmit { job: 5 }),
        ]);
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].completion_ms, None);
        attrs[0].reconcile().expect("contiguous");
        assert_eq!(attrs[0].attributed_ms(), 9_000);
        // Job 5 never started: its whole life is queue wait.
        assert_eq!(
            attrs[1].cause_totals_ms(),
            vec![] // admitted at the last event: zero-length life
        );

        // A stall outlives a straggle boundary: the window spans two
        // segments but the partition stays exact.
        let attrs = run(&[
            (0, SchedEvent::JobAdmit { job: 6 }),
            (0, start(6)),
            (
                1_000,
                SchedEvent::JobStall {
                    job: 6,
                    cause: DelayCause::Rendezvous,
                    pause_ms: 4_000,
                },
            ),
            (
                3_000,
                SchedEvent::JobStraggle {
                    job: 6,
                    factor: 0.5,
                },
            ),
            (10_000, SchedEvent::JobComplete { job: 6, jct_s: 10.0 }),
        ]);
        let a = &attrs[0];
        a.reconcile().expect("exact across the boundary");
        let totals = a.cause_totals_ms();
        assert!(totals.contains(&(DelayCause::Rendezvous, 4_000)));
        assert!(totals.contains(&(DelayCause::StragglerSlowdown, 5_000)));
        assert!(totals.contains(&(DelayCause::Productive, 1_000)));
    }
}
