//! The alert-rule engine: threshold and sustained-window rules over
//! the per-epoch telemetry gauges.
//!
//! Rules are evaluated once per scheduler epoch against the freshly
//! sampled gauge values. A rule whose condition holds for
//! `for_epochs` *consecutive* epochs fires once; it stays active until
//! the condition stops holding, at which point it resolves. Both
//! transitions are emitted as typed [`SchedEvent::Alert`] events into
//! the ordinary JSONL log, so alerts are replayable from a saved log,
//! attributable against the surrounding events, and pinned by the
//! golden-trace gate like every other event.
//!
//! Evaluation is a pure function of the sampled values, and the
//! per-rule counters are `serde`-serialisable checkpoint state — a
//! restored run fires and resolves the same alerts at the same epochs
//! as an uninterrupted one.
//!
//! [`SchedEvent::Alert`]: crate::event::SchedEvent::Alert

use serde::{Deserialize, Serialize};

/// The comparison a rule applies to its gauge each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AlertCondition {
    /// Holds while the gauge is strictly above the threshold.
    Above(f64),
    /// Holds while the gauge is strictly below the threshold.
    Below(f64),
}

impl AlertCondition {
    /// Whether the condition holds for `value`.
    pub fn holds(&self, value: f64) -> bool {
        match self {
            AlertCondition::Above(t) => value > *t,
            AlertCondition::Below(t) => value < *t,
        }
    }

    /// The rule's threshold, for event payloads.
    pub fn threshold(&self) -> f64 {
        match self {
            AlertCondition::Above(t) | AlertCondition::Below(t) => *t,
        }
    }
}

/// One alert rule: a condition over a named telemetry series, sustained
/// for a window of consecutive epochs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRule {
    /// Rule name, unique within the engine (`kebab-case` by convention).
    pub name: String,
    /// Telemetry series the rule watches (e.g. `queue.depth`).
    pub series: String,
    /// Threshold condition evaluated each epoch.
    pub condition: AlertCondition,
    /// Consecutive epochs the condition must hold before firing
    /// (1 = plain threshold rule).
    pub for_epochs: u32,
}

/// Per-rule evaluation state (checkpointed with the engine).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
struct RuleState {
    /// Consecutive epochs the condition has held.
    consecutive: u32,
    /// Whether the alert is currently firing.
    active: bool,
}

/// One fire/resolve transition produced by an evaluation round.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Rule that transitioned.
    pub rule: String,
    /// Series the rule watches.
    pub series: String,
    /// Gauge value that drove the transition.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// `true` on fire, `false` on resolve.
    pub fired: bool,
}

/// Evaluates a fixed rule set against per-epoch gauge samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
}

impl Default for AlertEngine {
    fn default() -> Self {
        AlertEngine::new(default_rules())
    }
}

impl AlertEngine {
    /// Creates an engine over `rules` with all counters reset.
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let states = vec![RuleState::default(); rules.len()];
        AlertEngine { rules, states }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Evaluates every rule against this epoch's gauge values.
    ///
    /// `lookup` maps a series name to its current sampled value; a rule
    /// whose series was not sampled this epoch is skipped (its counter
    /// neither advances nor resets). Returns the fire/resolve
    /// transitions in rule order — deterministic given the samples.
    pub fn evaluate<F>(&mut self, lookup: F) -> Vec<AlertTransition>
    where
        F: Fn(&str) -> Option<f64>,
    {
        let mut out = Vec::new();
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            let Some(value) = lookup(&rule.series) else {
                continue;
            };
            if rule.condition.holds(value) {
                state.consecutive = state.consecutive.saturating_add(1);
                if !state.active && state.consecutive >= rule.for_epochs {
                    state.active = true;
                    out.push(AlertTransition {
                        rule: rule.name.clone(),
                        series: rule.series.clone(),
                        value,
                        threshold: rule.condition.threshold(),
                        fired: true,
                    });
                }
            } else {
                state.consecutive = 0;
                if state.active {
                    state.active = false;
                    out.push(AlertTransition {
                        rule: rule.name.clone(),
                        series: rule.series.clone(),
                        value,
                        threshold: rule.condition.threshold(),
                        fired: false,
                    });
                }
            }
        }
        out
    }

    /// Whether rule `name` is currently firing.
    pub fn is_active(&self, name: &str) -> bool {
        self.rules
            .iter()
            .position(|r| r.name == name)
            .map(|i| self.states[i].active)
            .unwrap_or(false)
    }
}

/// The default scheduler health rules.
///
/// Thresholds target the cluster-dynamics failure modes the paper's
/// scheduler is supposed to avoid: a standing pending queue, a reclaim
/// debt that will not clear, and sustained preemption churn.
pub fn default_rules() -> Vec<AlertRule> {
    vec![
        AlertRule {
            name: "queue-backlog".to_string(),
            series: "queue.depth".to_string(),
            condition: AlertCondition::Above(4.0),
            for_epochs: 10,
        },
        AlertRule {
            name: "reclaim-backlog".to_string(),
            series: "reclaim.carry_servers".to_string(),
            condition: AlertCondition::Above(0.0),
            for_epochs: 2,
        },
        AlertRule {
            name: "preemption-churn".to_string(),
            series: "rate.preemptions".to_string(),
            condition: AlertCondition::Above(0.0),
            for_epochs: 3,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(for_epochs: u32) -> AlertRule {
        AlertRule {
            name: "test".to_string(),
            series: "queue.depth".to_string(),
            condition: AlertCondition::Above(5.0),
            for_epochs,
        }
    }

    #[test]
    fn threshold_rule_fires_and_resolves() {
        let mut eng = AlertEngine::new(vec![rule(1)]);
        assert!(eng.evaluate(|_| Some(3.0)).is_empty());
        let fired = eng.evaluate(|_| Some(9.0));
        assert_eq!(fired.len(), 1);
        assert!(fired[0].fired);
        assert!(eng.is_active("test"));
        // Still above: no duplicate fire.
        assert!(eng.evaluate(|_| Some(10.0)).is_empty());
        let resolved = eng.evaluate(|_| Some(1.0));
        assert_eq!(resolved.len(), 1);
        assert!(!resolved[0].fired);
        assert!(!eng.is_active("test"));
    }

    #[test]
    fn sustained_window_requires_consecutive_epochs() {
        let mut eng = AlertEngine::new(vec![rule(3)]);
        assert!(eng.evaluate(|_| Some(9.0)).is_empty());
        assert!(eng.evaluate(|_| Some(9.0)).is_empty());
        // A dip resets the streak.
        assert!(eng.evaluate(|_| Some(1.0)).is_empty());
        assert!(eng.evaluate(|_| Some(9.0)).is_empty());
        assert!(eng.evaluate(|_| Some(9.0)).is_empty());
        let fired = eng.evaluate(|_| Some(9.0));
        assert_eq!(fired.len(), 1);
        assert!(fired[0].fired);
    }

    #[test]
    fn missing_series_is_skipped_without_reset() {
        let mut eng = AlertEngine::new(vec![rule(2)]);
        assert!(eng.evaluate(|_| Some(9.0)).is_empty());
        // Series absent this epoch: streak preserved, nothing fires.
        assert!(eng.evaluate(|_| None).is_empty());
        let fired = eng.evaluate(|_| Some(9.0));
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn state_survives_serde_round_trip() {
        let mut eng = AlertEngine::new(vec![rule(3)]);
        let _ = eng.evaluate(|_| Some(9.0));
        let _ = eng.evaluate(|_| Some(9.0));
        let json = serde_json::to_string(&eng).expect("serialises");
        let mut back: AlertEngine = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(eng, back);
        // The restored engine continues the streak: third epoch fires.
        let fired = back.evaluate(|_| Some(9.0));
        assert_eq!(fired.len(), 1);
        assert!(fired[0].fired);
    }
}
