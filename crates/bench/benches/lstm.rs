//! LSTM predictor benchmarks (§6): per-step training and inference cost
//! of the usage predictor.

use criterion::{criterion_group, criterion_main, Criterion};
use lyra_predictor::{LstmConfig, UsagePredictor};
use std::hint::black_box;

fn bench_predict(c: &mut Criterion) {
    let model = UsagePredictor::new(LstmConfig::default());
    let window = vec![0.6; 10];
    c.bench_function("lstm/predict", |b| {
        b.iter(|| model.predict(black_box(&window)))
    });
}

fn bench_train_step(c: &mut Criterion) {
    c.bench_function("lstm/train_step", |b| {
        let mut model = UsagePredictor::new(LstmConfig::default());
        let window = vec![0.6; 10];
        b.iter(|| model.train_step(black_box(&window), black_box(0.65)))
    });
}

fn bench_train_day(c: &mut Criterion) {
    // One epoch over a day of 5-minute samples (288 windows).
    let series: Vec<f64> = (0..288)
        .map(|i| 0.65 + 0.3 * (i as f64 * 0.02).sin())
        .collect();
    let mut g = c.benchmark_group("lstm/train_day");
    g.bench_function("one_epoch_288_samples", |b| {
        b.iter(|| {
            let mut model = UsagePredictor::new(LstmConfig::default());
            model.train_series(black_box(&series), 1)
        })
    });
    g.finish();
}


/// Bounded measurement so the whole suite completes in minutes on one
/// core; pass `--sample-size`/`--measurement-time` to override.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = fast(); targets = bench_predict, bench_train_step, bench_train_day);
criterion_main!(benches);
