//! Simulator throughput benchmarks: full scenario runs per second at
//! small scale — the fidelity/speed trade the paper's own simulator makes
//! when replaying 50k jobs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lyra_cluster::state::ClusterConfig;
use lyra_sim::{run_scenario, Scenario};
use lyra_trace::{InferenceTrace, InferenceTraceConfig, JobTrace, TraceConfig};
use std::hint::black_box;

fn traces(days: u32, servers: u32, seed: u64) -> (JobTrace, InferenceTrace) {
    let jobs = JobTrace::generate(TraceConfig {
        days,
        training_gpus: servers * 8,
        max_demand_gpus: 32,
        seed,
        ..TraceConfig::default()
    });
    let inference = InferenceTrace::generate(InferenceTraceConfig {
        days: days + 2,
        total_gpus: servers * 8,
        seed: seed ^ 0xAB,
        ..InferenceTraceConfig::default()
    });
    (jobs, inference)
}

fn bench_scenarios(c: &mut Criterion) {
    let (jobs, inference) = traces(1, 12, 1);
    let cluster = ClusterConfig {
        training_servers: 12,
        inference_servers: 12,
        gpus_per_server: 8,
        speed: lyra_core::gpu::SpeedFactors::default(),
    };
    let mut g = c.benchmark_group("sim/one_day_12_servers");
    for (name, scenario) in [
        ("baseline", Scenario::baseline()),
        ("basic", Scenario::basic()),
        (
            "lyra_scaling",
            Scenario::elastic_only("lyra", "s"),
        ),
    ] {
        let mut s = scenario;
        s.cluster = cluster;
        g.bench_with_input(BenchmarkId::from_parameter(name), &s, |b, s| {
            b.iter(|| run_scenario(black_box(s), black_box(&jobs), black_box(&inference)))
        });
    }
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("sim/trace_generation_4_days", |b| {
        b.iter(|| {
            JobTrace::generate(TraceConfig {
                days: 4,
                training_gpus: 1200,
                seed: 9,
                ..TraceConfig::default()
            })
        })
    });
}


/// Bounded measurement so the whole suite completes in minutes on one
/// core; pass `--sample-size`/`--measurement-time` to override.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = fast(); targets = bench_scenarios, bench_trace_generation);
criterion_main!(benches);
