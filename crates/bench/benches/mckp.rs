//! MCKP solve-time benchmarks (§5.2).
//!
//! The paper reports that dynamic programming solves its largest
//! production instance — 354 items over 245 GPUs — in 0.02 s. The
//! `paper_point` benchmark reproduces exactly that shape; the sweeps show
//! the pseudo-polynomial scaling in capacity and item count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lyra_core::{solve_mckp, McKnapsackGroup, McKnapsackItem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Builds `groups` groups of `items_per_group` items with weights like
/// phase 2 produces (extra-worker counts × GPUs per worker).
fn instance(groups: usize, items_per_group: usize, seed: u64) -> Vec<McKnapsackGroup> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..groups)
        .map(|g| {
            let gpw = [1u32, 2, 4][rng.gen_range(0..3)];
            McKnapsackGroup {
                key: g as u64,
                items: (1..=items_per_group as u32)
                    .map(|k| McKnapsackItem {
                        weight: k * gpw,
                        value: rng.gen_range(1.0..500.0) * f64::from(k),
                    })
                    .collect(),
            }
        })
        .collect()
}

fn bench_paper_point(c: &mut Criterion) {
    // 354 items / 245 GPUs: the paper's largest observed instance.
    let groups = instance(59, 6, 1); // 59 × 6 = 354 items
    c.bench_function("mckp/paper_point_354_items_245_gpus", |b| {
        b.iter(|| solve_mckp(black_box(&groups), black_box(245)))
    });
}

fn bench_capacity_sweep(c: &mut Criterion) {
    let groups = instance(50, 6, 2);
    let mut g = c.benchmark_group("mckp/capacity");
    for capacity in [64u32, 256, 1024, 4096] {
        g.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |b, &cap| b.iter(|| solve_mckp(black_box(&groups), black_box(cap))),
        );
    }
    g.finish();
}

fn bench_group_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("mckp/groups");
    for n in [10usize, 50, 200, 500] {
        let groups = instance(n, 4, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &groups, |b, groups| {
            b.iter(|| solve_mckp(black_box(groups), black_box(512)))
        });
    }
    g.finish();
}


/// Bounded measurement so the whole suite completes in minutes on one
/// core; pass `--sample-size`/`--measurement-time` to override.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = fast(); targets =     bench_paper_point,
    bench_capacity_sweep,
    bench_group_sweep
);
criterion_main!(benches);
