//! Two-phase allocation benchmarks (§5.2): one full scheduling epoch at
//! cluster scale, and the policy comparison (Lyra vs Pollux's GA vs AFS's
//! greedy loop) on identical snapshots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lyra_core::policies::{
    AfsScheduler, GandivaScheduler, JobScheduler, LyraScheduler, PolluxConfig, PolluxScheduler,
};
use lyra_core::snapshot::{PendingJobView, PoolKind, ServerView, Snapshot};
use lyra_core::{two_phase_allocate, AllocationConfig, GpuType, JobSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn snapshot(servers: u32, pending: usize, seed: u64) -> Snapshot {
    let mut rng = StdRng::seed_from_u64(seed);
    let servers: Vec<ServerView> = (0..servers)
        .map(|i| {
            let mut s = ServerView::idle(i, PoolKind::Training, GpuType::V100, 8);
            s.free_gpus = rng.gen_range(0..=8);
            s
        })
        .collect();
    let pending = (0..pending)
        .map(|i| {
            let spec = if rng.gen_bool(0.3) {
                let w = rng.gen_range(1..=4);
                JobSpec::elastic(i as u64, 0.0, w, w * 2, 2, rng.gen_range(600.0..86_400.0))
            } else {
                JobSpec::inelastic(
                    i as u64,
                    0.0,
                    rng.gen_range(1..=8),
                    [1, 2, 4][rng.gen_range(0..3)],
                    rng.gen_range(60.0..86_400.0),
                )
            };
            PendingJobView::fresh(spec)
        })
        .collect();
    Snapshot {
        time_s: 0.0,
        servers,
        pending,
        running: vec![],
    }
}

fn bench_two_phase(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocation/two_phase");
    for pending in [20usize, 100, 400] {
        let snap = snapshot(443, pending, 1);
        g.bench_with_input(BenchmarkId::from_parameter(pending), &snap, |b, snap| {
            b.iter(|| two_phase_allocate(black_box(snap), AllocationConfig::default()))
        });
    }
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let snap = snapshot(200, 80, 2);
    let mut g = c.benchmark_group("allocation/policy_epoch");
    g.bench_function("lyra", |b| {
        let mut p = LyraScheduler::default();
        b.iter(|| p.schedule(black_box(&snap)))
    });
    g.bench_function("gandiva", |b| {
        let mut p = GandivaScheduler::new();
        b.iter(|| p.schedule(black_box(&snap)))
    });
    g.bench_function("afs", |b| {
        let mut p = AfsScheduler::new();
        b.iter(|| p.schedule(black_box(&snap)))
    });
    g.bench_function("pollux_250_iters", |b| {
        let mut p = PolluxScheduler::new(PolluxConfig::default());
        b.iter(|| p.schedule(black_box(&snap)))
    });
    g.finish();
}


/// Bounded measurement so the whole suite completes in minutes on one
/// core; pass `--sample-size`/`--measurement-time` to override.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = fast(); targets = bench_two_phase, bench_policies);
criterion_main!(benches);
