//! Placement benchmarks (§5.3): best-fit-decreasing at cluster scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lyra_core::placement::{place_workers, PlacementConfig, PlacementRequest, WorkerRole};
use lyra_core::snapshot::{PoolKind, ServerView};
use lyra_core::{GpuType, JobId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn servers(train: u32, loan: u32, seed: u64) -> Vec<ServerView> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<ServerView> = (0..train)
        .map(|i| {
            let mut s = ServerView::idle(i, PoolKind::Training, GpuType::V100, 8);
            // Pre-existing fragmentation.
            s.free_gpus = rng.gen_range(0..=8);
            s
        })
        .collect();
    for i in 0..loan {
        v.push(ServerView::idle(
            train + i,
            PoolKind::OnLoan,
            GpuType::T4,
            8,
        ));
    }
    v
}

fn requests(n: usize, seed: u64) -> Vec<PlacementRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let elastic = rng.gen_bool(0.2);
            PlacementRequest {
                job: JobId(i as u64),
                workers: rng.gen_range(1..=8),
                gpus_per_worker: [1, 2, 4, 8][rng.gen_range(0..4)],
                role: if elastic {
                    WorkerRole::ElasticBase
                } else {
                    WorkerRole::Inelastic
                },
                fungible: rng.gen_bool(0.21),
                hetero: false,
            }
        })
        .collect()
}

fn bench_cluster_scale(c: &mut Criterion) {
    // The paper's cluster: 443 training servers plus ~100 on loan; a busy
    // epoch places ~50 jobs.
    let base = servers(443, 100, 1);
    let reqs = requests(50, 2);
    c.bench_function("placement/bfd_443_servers_50_jobs", |b| {
        b.iter(|| {
            let mut scratch = base.clone();
            place_workers(
                black_box(&mut scratch),
                black_box(&reqs),
                PlacementConfig::default(),
            )
        })
    });
}

fn bench_job_sweep(c: &mut Criterion) {
    let base = servers(200, 50, 3);
    let mut g = c.benchmark_group("placement/jobs");
    for n in [10usize, 50, 200] {
        let reqs = requests(n, 4);
        g.bench_with_input(BenchmarkId::from_parameter(n), &reqs, |b, reqs| {
            b.iter(|| {
                let mut scratch = base.clone();
                place_workers(&mut scratch, black_box(reqs), PlacementConfig::default())
            })
        });
    }
    g.finish();
}


/// Bounded measurement so the whole suite completes in minutes on one
/// core; pass `--sample-size`/`--measurement-time` to override.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = fast(); targets = bench_cluster_scale, bench_job_sweep);
criterion_main!(benches);
