//! Reclaiming-policy benchmarks (§4, §7.3).
//!
//! The paper reports its heuristic takes 1–3 ms per decision while the
//! exhaustive optimum costs ~420,000× more at scale. `heuristics`
//! compares Lyra/SCF/Random on the same instance; `optimal_gap` runs the
//! exhaustive search on small instances to expose the blow-up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lyra_core::reclaim::{
    reclaim_exhaustive_optimal, reclaim_random, reclaim_scf, reclaim_servers, CostModel,
    JobFootprint, ReclaimRequest, ReclaimServerView,
};
use lyra_core::{JobId, ServerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Builds a reclaim instance with jobs spanning 1–3 servers.
fn instance(n_servers: usize, n_jobs: usize, need: usize, seed: u64) -> ReclaimRequest {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut servers: Vec<ReclaimServerView> = (0..n_servers)
        .map(|i| ReclaimServerView {
            id: ServerId(i as u32),
            total_gpus: 8,
            jobs: vec![],
        })
        .collect();
    let mut jobs = Vec::new();
    for j in 0..n_jobs {
        let span = rng.gen_range(1..=3usize).min(n_servers);
        let mut placed = 0;
        for _ in 0..span {
            let h = rng.gen_range(0..n_servers);
            let used: u32 = servers[h].jobs.iter().map(|(_, g)| g).sum();
            if used >= 8 {
                continue;
            }
            let g = rng.gen_range(1..=(8 - used).min(4));
            servers[h].jobs.push((JobId(j as u64), g));
            placed += g;
        }
        if placed > 0 {
            let hosts = servers
                .iter()
                .filter(|s| s.jobs.iter().any(|(id, _)| id.0 == j as u64))
                .count() as u32;
            jobs.push(JobFootprint {
                id: JobId(j as u64),
                total_servers: hosts,
                total_gpus: placed,
            });
        }
    }
    ReclaimRequest {
        servers,
        jobs,
        need,
    }
}

fn bench_heuristics(c: &mut Criterion) {
    // A production-plausible reclaim wave: 120 loaned servers, 200 jobs,
    // 40 servers demanded.
    let request = instance(120, 200, 40, 1);
    let mut g = c.benchmark_group("reclaim/heuristics");
    g.bench_function("lyra", |b| {
        b.iter(|| reclaim_servers(black_box(&request), CostModel::ServerFraction))
    });
    g.bench_function("scf", |b| b.iter(|| reclaim_scf(black_box(&request))));
    g.bench_function("random", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| reclaim_random(black_box(&request), &mut rng))
    });
    g.finish();
}

fn bench_scale_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("reclaim/lyra_scale");
    for n in [16usize, 64, 256, 512] {
        let request = instance(n, n * 2, n / 3, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &request, |b, req| {
            b.iter(|| reclaim_servers(black_box(req), CostModel::ServerFraction))
        });
    }
    g.finish();
}

fn bench_optimal_gap(c: &mut Criterion) {
    let mut g = c.benchmark_group("reclaim/optimal_gap");
    for jobs in [4usize, 8, 12] {
        let request = instance(8, jobs, 3, 3);
        g.bench_with_input(BenchmarkId::new("optimal", jobs), &request, |b, req| {
            b.iter(|| reclaim_exhaustive_optimal(black_box(req)))
        });
        g.bench_with_input(BenchmarkId::new("lyra", jobs), &request, |b, req| {
            b.iter(|| reclaim_servers(black_box(req), CostModel::ServerFraction))
        });
    }
    g.finish();
}


/// Bounded measurement so the whole suite completes in minutes on one
/// core; pass `--sample-size`/`--measurement-time` to override.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = fast(); targets =     bench_heuristics,
    bench_scale_sweep,
    bench_optimal_gap
);
criterion_main!(benches);
