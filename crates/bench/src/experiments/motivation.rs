//! Motivation figures and worked examples: Figures 1–3, Tables 1–4, and
//! the §6 LSTM measurement.

use crate::tables::{render, render_series};
use crate::{ExperimentResult, Scale};
use lyra_core::job::{JobSpec, ModelFamily};
use lyra_core::reclaim::cost_table;
use lyra_core::snapshot::{PendingJobView, PoolKind, ServerView, Snapshot};
use lyra_core::{
    solve_mckp, two_phase_allocate, AllocationConfig, GpuType, McKnapsackGroup, McKnapsackItem,
};
use lyra_elastic::figure3_series;
use lyra_predictor::{LstmConfig, UsagePredictor};
use lyra_sim::{run_scenario, Scenario};
use lyra_trace::InferenceTrace;

fn result(experiment: &str, scale: Scale) -> ExperimentResult {
    ExperimentResult {
        experiment: experiment.to_string(),
        scale: format!("{scale:?}"),
        series: Vec::new(),
        reports: Vec::new(),
    }
}

/// Figure 1: one week of inference-cluster GPU utilisation.
pub fn fig1(scale: Scale) -> ExperimentResult {
    let trace = InferenceTrace::generate(lyra_trace::InferenceTraceConfig {
        days: 7,
        ..scale.inference_config(1)
    });
    let hourly: Vec<f64> = trace
        .samples
        .chunks(12)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let xs: Vec<f64> = (0..hourly.len()).map(|h| h as f64).collect();
    lyra_obs::emitln!(
        "{}",
        render_series("Figure 1: inference GPU utilisation (hourly)", &xs, &hourly)
    );
    let (trough, peak) = trace.trough_peak();
    lyra_obs::emitln!(
        "mean {:.2}  trough {:.2}  peak {:.2}  peak/trough {:.2}  median 5-min burst {:.3}",
        trace.mean(),
        trough,
        peak,
        peak / trough,
        trace.median_burst()
    );
    let mut r = result("fig1", scale);
    r.series.push(("hourly_utilization".into(), hourly));
    r.series.push((
        "stats".into(),
        vec![trace.mean(), trough, peak, trace.median_burst()],
    ));
    r
}

/// Figure 2: hourly fraction of queuing jobs in the training cluster
/// under the Baseline scheduler.
pub fn fig2(scale: Scale) -> ExperimentResult {
    let (jobs, inference) = scale.traces(2);
    let mut scenario = Scenario::baseline();
    scenario.cluster = scale.cluster_config();
    let report = run_scenario(&scenario, &jobs, &inference).expect("baseline runs");
    let tolerance = scenario.sim.scheduler_interval_s + 1.0;
    let ratio = report.hourly_queuing_ratio(tolerance);
    let xs: Vec<f64> = (0..ratio.len()).map(|h| h as f64).collect();
    lyra_obs::emitln!(
        "{}",
        render_series("Figure 2: hourly queuing-job ratio (Baseline)", &xs, &ratio)
    );
    lyra_obs::emitln!(
        "training usage {:.2}  mean queuing {:.0}s",
        report.training_usage, report.queuing.mean
    );
    let mut r = result("fig2", scale);
    r.series.push(("hourly_queuing_ratio".into(), ratio));
    r.reports.push(report);
    r
}

/// Figure 3: throughput scaling of the four elastic model families.
pub fn fig3() -> ExperimentResult {
    let mut r = result("fig3", Scale::Small);
    for family in [
        ModelFamily::ResNet50,
        ModelFamily::Vgg16,
        ModelFamily::Bert,
        ModelFamily::Gnmt16,
    ] {
        let series = figure3_series(family, 30, 5);
        let xs: Vec<f64> = series.iter().map(|p| f64::from(p.epoch)).collect();
        let ys: Vec<f64> = series.iter().map(|p| p.throughput).collect();
        lyra_obs::emitln!(
            "{}",
            render_series(&format!("Figure 3: {family:?} throughput"), &xs, &ys)
        );
        r.series.push((format!("{family:?}"), ys));
    }
    r
}

/// Table 1 / Figure 5: the three preemption-cost definitions on the
/// worked example.
pub fn tab1() -> ExperimentResult {
    // The Figure 5 fixture is reconstructed here exactly as in the
    // reclaim test suite.
    use lyra_core::reclaim::{JobFootprint, ReclaimRequest, ReclaimServerView};
    use lyra_core::{JobId, ServerId};
    let fp = |id: u64, servers: u32, gpus: u32| JobFootprint {
        id: JobId(id),
        total_servers: servers,
        total_gpus: gpus,
    };
    let request = ReclaimRequest {
        servers: vec![
            ReclaimServerView {
                id: ServerId(1),
                total_gpus: 8,
                jobs: vec![(JobId(0), 4)],
            },
            ReclaimServerView {
                id: ServerId(2),
                total_gpus: 8,
                jobs: vec![(JobId(0), 4)],
            },
            ReclaimServerView {
                id: ServerId(3),
                total_gpus: 8,
                jobs: vec![(JobId(1), 8)],
            },
            ReclaimServerView {
                id: ServerId(4),
                total_gpus: 8,
                jobs: vec![(JobId(2), 8)],
            },
            ReclaimServerView {
                id: ServerId(5),
                total_gpus: 8,
                jobs: vec![(JobId(3), 2), (JobId(4), 2)],
            },
            ReclaimServerView {
                id: ServerId(6),
                total_gpus: 8,
                jobs: vec![(JobId(5), 8)],
            },
        ],
        jobs: vec![
            fp(0, 2, 8),
            fp(1, 1, 8),
            fp(2, 2, 10),
            fp(3, 2, 10),
            fp(4, 2, 10),
            fp(5, 2, 10),
        ],
        need: 2,
    };
    let mut rows = vec![vec![
        "Server".to_string(),
        "# running jobs".to_string(),
        "GPU fraction".to_string(),
        "server fraction".to_string(),
    ]];
    for (sid, count, gpu_frac, server_frac) in cost_table(&request) {
        rows.push(vec![
            sid.to_string(),
            format!("{count:.0}"),
            format!("{gpu_frac:.1}"),
            format!("{server_frac:.1}"),
        ]);
    }
    lyra_obs::emitln!("Table 1: server preemption-cost definitions (Figure 5 example)");
    lyra_obs::emitln!("{}", render(&rows));
    let out = lyra_core::reclaim_servers(&request, lyra_core::CostModel::ServerFraction);
    lyra_obs::emitln!(
        "Lyra (server fraction): returns {:?}, preempts {} job(s) — the optimum.",
        out.returned,
        out.preempted.len()
    );
    let out = lyra_core::reclaim_servers(&request, lyra_core::CostModel::GpuFraction);
    lyra_obs::emitln!(
        "GPU-fraction variant: returns {:?}, preempts {} job(s) — the paper's counterexample.",
        out.returned,
        out.preempted.len()
    );
    result("tab1", Scale::Small)
}

/// Tables 2–4 and Figure 6: the elasticity worked examples.
pub fn tab234() -> ExperimentResult {
    // Table 2/3: jobs A and B, range [2, 6], 50 s / 20 s, 8 workers.
    let a = JobSpec::elastic(0, 0.0, 2, 6, 1, 50.0);
    let b = JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0);
    lyra_obs::emitln!("Table 3: allocation strategies for Table 2's jobs (8 workers)");
    let mut rows = vec![vec![
        "Solution".to_string(),
        "A".to_string(),
        "B".to_string(),
        "JCT A".to_string(),
        "JCT B".to_string(),
        "Avg JCT".to_string(),
    ]];
    for (label, wa, wb) in [
        ("favour A", 6u32, 2u32),
        ("favour B", 2, 6),
        ("equal", 4, 4),
    ] {
        let out = lyra_core::evaluate_two_job_split(&a, &b, 8, wa, wb)
            .expect("Table 3 splits are feasible");
        rows.push(vec![
            label.to_string(),
            wa.to_string(),
            wb.to_string(),
            format!("{:.2}", out.jcts.0),
            format!("{:.2}", out.jcts.1),
            format!("{:.2}", out.avg_jct),
        ]);
    }
    lyra_obs::emitln!("{}", render(&rows));
    let opt = lyra_core::optimal_two_job_allocation(&a, &b, 8).expect("feasible");
    lyra_obs::emitln!(
        "exact optimum over all splits: A={} B={} (avg JCT {:.2}) — §5.1's analysis",
        opt.initial.0, opt.initial.1, opt.avg_jct
    );

    // Table 4 / Figure 6: the SJF counterexample and its MCKP transform.
    let a4 = JobSpec::elastic(0, 0.0, 2, 3, 2, 100.0);
    let b4 = JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0);
    lyra_obs::emitln!("Figure 6: MCKP items for Table 4's jobs (2 GPUs left after bases)");
    let groups = vec![
        McKnapsackGroup {
            key: 0,
            items: (1..=a4.w_max() - a4.w_min())
                .map(|k| McKnapsackItem {
                    weight: k * a4.gpus_per_worker,
                    value: a4.base_running_time() - a4.running_time(a4.w_min() + k),
                })
                .collect(),
        },
        McKnapsackGroup {
            key: 1,
            items: (1..=b4.w_max() - b4.w_min())
                .map(|k| McKnapsackItem {
                    weight: k * b4.gpus_per_worker,
                    value: b4.base_running_time() - b4.running_time(b4.w_min() + k),
                })
                .collect(),
        },
    ];
    let mut rows = vec![vec![
        "Group".to_string(),
        "Item".to_string(),
        "Weight".to_string(),
        "JCT reduction".to_string(),
    ]];
    for g in &groups {
        for (i, item) in g.items.iter().enumerate() {
            rows.push(vec![
                if g.key == 0 { "A" } else { "B" }.to_string(),
                (i + 1).to_string(),
                item.weight.to_string(),
                format!("{:.0}", item.value),
            ]);
        }
    }
    lyra_obs::emitln!("{}", render(&rows));
    let solution = solve_mckp(&groups, 2);
    lyra_obs::emitln!(
        "MCKP over 2 leftover GPUs picks value {:.0} (A's extra worker) — \
         prioritising A as §5.1 derives.",
        solution.total_value
    );

    // End-to-end: the two-phase allocator resolves Table 4 the same way.
    let snapshot = Snapshot {
        time_s: 0.0,
        servers: vec![ServerView::idle(0, PoolKind::Training, GpuType::V100, 8)],
        pending: vec![PendingJobView::fresh(a4), PendingJobView::fresh(b4)],
        running: vec![],
    };
    let out = two_phase_allocate(&snapshot, AllocationConfig::default());
    lyra_obs::emitln!("two-phase allocation on Table 4: {:?}", out.launches);
    result("tab234", Scale::Small)
}

/// §6's LSTM predictor measurement: train on the utilisation trace and
/// report the average MSE over 1,440 points (the paper: 0.00048).
pub fn lstm(scale: Scale) -> ExperimentResult {
    let trace = InferenceTrace::generate(scale.inference_config(6));
    let n = trace.samples.len();
    let split = n.saturating_sub(1440).max(n / 2);
    let mut model = UsagePredictor::new(LstmConfig::default());
    let train_loss = model.train_series(&trace.samples[..split], 3);
    let eval = model.evaluate(&trace.samples[split..]);
    lyra_obs::emitln!(
        "LSTM usage predictor: final training MSE {train_loss:.6}, \
         held-out MSE over {} points: {eval:.6} (paper reports 0.00048)",
        n - split
    );
    let mut r = result("lstm", scale);
    r.series.push(("mse".into(), vec![train_loss, eval]));
    r
}
