//! The testbed experiments of §7.5 (Table 10 and Figure 17): the same
//! engine at the prototype's scale — 4 training + 4 inference 8-GPU
//! servers, 180 jobs (10 elastic) submitted over 8 hours.

use crate::tables::{render, table5_header, table5_row};
use crate::{reduction, ExperimentResult};
use lyra_cluster::orchestrator::ReclaimPolicy;
use lyra_cluster::state::ClusterConfig;
use lyra_sim::{run_scenario, Scenario, SimReport};
use lyra_trace::{InferenceTrace, InferenceTraceConfig, JobTrace, TraceConfig};

fn testbed_traces(seed: u64) -> (JobTrace, InferenceTrace) {
    let jobs = JobTrace::generate(TraceConfig::testbed(seed));
    // The paper scales the inference trace down to testbed capacity; a
    // deeper trough lets the 4-server inference side lend up to 3 servers
    // (§7.5 observes at most three on loan).
    let inference = InferenceTrace::generate(InferenceTraceConfig {
        days: 3,
        total_gpus: 32,
        trough: 0.12,
        peak: 0.85,
        noise: 0.06,
        burst_prob: 0.10,
        burst_mean: 0.08,
        seed: seed ^ 0xBEEF,
    });
    (jobs, inference)
}

fn run(mut scenario: Scenario, jobs: &JobTrace, inf: &InferenceTrace) -> SimReport {
    scenario.cluster = ClusterConfig::testbed();
    run_scenario(&scenario, jobs, inf).expect("testbed scenario completes")
}

fn result(experiment: &str) -> ExperimentResult {
    ExperimentResult {
        experiment: experiment.to_string(),
        scale: "Testbed".to_string(),
        series: Vec::new(),
        reports: Vec::new(),
    }
}

/// Table 10: testbed results — Overall (Baseline vs Lyra), capacity
/// loaning (Random/SCF/Lyra) and elastic scaling
/// (Gandiva/AFS/Pollux/Lyra).
pub fn tab10() -> ExperimentResult {
    let (jobs, inference) = testbed_traces(0x7B);
    let mut res = result("tab10");
    let mut rows = vec![table5_header()];

    let baseline = run(Scenario::baseline(), &jobs, &inference);
    let lyra = run(Scenario::basic(), &jobs, &inference);
    rows.push(table5_row("Baseline", &baseline, true));
    rows.push(table5_row("Lyra", &lyra, true));
    lyra_obs::emitln!(
        "Overall: queuing {:.2}x, JCT mean {:.2}x over Baseline",
        reduction(baseline.queuing.mean, lyra.queuing.mean),
        reduction(baseline.jct.mean, lyra.jct.mean),
    );
    lyra_obs::emitln!(
        "loan ops {}, reclaim ops {}, scaling ops {}",
        lyra.loan_ops, lyra.reclaim_ops, lyra.scaling_ops
    );
    res.reports.push(baseline);
    res.reports.push(lyra);

    for policy in [
        ReclaimPolicy::Random,
        ReclaimPolicy::Scf,
        ReclaimPolicy::Lyra,
    ] {
        let r = run(
            Scenario::loaning_only(policy, &format!("testbed-{policy:?}")),
            &jobs,
            &inference,
        );
        rows.push(table5_row(&format!("{policy:?} (loaning)"), &r, true));
        res.reports.push(r);
    }
    for (label, kind) in [
        ("Gandiva", "gandiva"),
        ("AFS", "afs"),
        ("Pollux", "pollux"),
        ("Lyra (scaling)", "lyra"),
    ] {
        let r = run(
            Scenario::elastic_only(kind, &format!("testbed-{label}")),
            &jobs,
            &inference,
        );
        rows.push(table5_row(label, &r, false));
        res.reports.push(r);
    }
    lyra_obs::emitln!("Table 10: testbed results (Basic scenario)");
    lyra_obs::emitln!("{}", render(&rows));
    res
}

/// Figure 17: testbed preemption count and collateral damage per
/// reclaiming scheme, with and without scaling.
pub fn fig17() -> ExperimentResult {
    let (jobs, inference) = testbed_traces(0x17);
    let mut res = result("fig17");
    let mut rows = vec![vec![
        "Scheme".to_string(),
        "Scaling".to_string(),
        "Preemption ratio".to_string(),
        "Collateral damage".to_string(),
    ]];
    for (scaling, label) in [(false, "disabled"), (true, "enabled")] {
        for policy in [
            ReclaimPolicy::Random,
            ReclaimPolicy::Scf,
            ReclaimPolicy::Lyra,
        ] {
            let scenario = if scaling {
                let mut s = Scenario::basic();
                s.loaning = Some(policy);
                s.name = format!("fig17-{policy:?}-scaled");
                s
            } else {
                Scenario::loaning_only(policy, &format!("fig17-{policy:?}"))
            };
            let r = run(scenario, &jobs, &inference);
            rows.push(vec![
                format!("{policy:?}"),
                label.to_string(),
                format!("{:.2}%", r.preemption_ratio * 100.0),
                format!("{:.1}%", r.collateral_damage * 100.0),
            ]);
            res.series.push((
                format!("{policy:?}-{label}"),
                vec![r.preemption_ratio, r.collateral_damage],
            ));
            res.reports.push(r);
        }
    }
    lyra_obs::emitln!("Figure 17: testbed preemption and collateral damage");
    lyra_obs::emitln!("{}", render(&rows));
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_traces_match_paper_shape() {
        let (jobs, inf) = testbed_traces(1);
        assert_eq!(jobs.jobs.len(), 180);
        assert_eq!(inf.config.total_gpus, 32);
    }
}
