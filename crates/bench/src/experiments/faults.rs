//! Robustness under failures: Lyra vs FIFO/AFS/Pollux as the injected
//! server-crash rate rises.
//!
//! The paper's production setting loses machines; this experiment checks
//! that Lyra's elasticity is also a *fault-tolerance* mechanism. When a
//! server dies, an elastic job whose workers there were all flexible
//! scales in around the dead host and keeps training, while rigid jobs
//! restart from a checkpoint (or scratch). Rising failure rates should
//! therefore hurt Lyra measurably less than the inelastic comparators.

use crate::tables::render;
use crate::{ExperimentResult, Scale};
use lyra_sim::{run_scenario, transform, FaultConfig, FaultPlan, Scenario};

/// Crash-rate sweep (crashes per server per day) × scheduling policy.
pub fn faults(scale: Scale) -> ExperimentResult {
    let (mut jobs, inference) = scale.traces(0xFA);
    // Half the trace elastic, half checkpointing — faults then exercise
    // every recovery path: absorb, checkpoint restore, scratch restart.
    transform::set_elastic_fraction(&mut jobs, 0.5, 0xFA);
    transform::set_checkpoint_fraction(&mut jobs, 0.5, 0xFB);
    let horizon_s = f64::from(scale.days()) * 86_400.0;
    let (training, inf_servers) = scale.servers();
    let servers = training + inf_servers;

    let policies = [
        ("FIFO", "fifo-backfill", false),
        ("AFS", "afs", false),
        ("Pollux", "pollux", false),
        ("Lyra", "lyra", true),
    ];
    let crash_rates = [0.0, 0.2, 1.0];

    let mut rows = vec![vec![
        "Policy".to_string(),
        "Crashes/server/day".to_string(),
        "JCT mean".to_string(),
        "QT mean".to_string(),
        "Restarts".to_string(),
        "Absorbed".to_string(),
        "Work lost (h)".to_string(),
        "Deadline misses".to_string(),
    ]];
    let mut res = ExperimentResult {
        experiment: "faults".to_string(),
        scale: format!("{scale:?}"),
        series: Vec::new(),
        reports: Vec::new(),
    };

    for (label, policy, loaning) in policies {
        for &rate in &crash_rates {
            let mut s = if loaning {
                Scenario::basic()
            } else {
                Scenario::elastic_only(policy, label)
            };
            s.name = format!("{label}@{rate}");
            s.policy = policy.to_string();
            s.cluster = scale.cluster_config();
            if rate > 0.0 {
                s.faults = Some(FaultPlan::generate(
                    &FaultConfig {
                        server_crash_rate_per_day: rate,
                        worker_failure_rate_per_day: 2.0 * rate * f64::from(servers),
                        checkpoint_restore_failure_prob: 0.1,
                        straggler_rate_per_day: rate / 4.0,
                        dropped_tick_prob: 0.02,
                        horizon_s,
                        ..FaultConfig::default()
                    },
                    servers,
                    0xFA017 ^ (rate * 10.0) as u64,
                ));
            }
            let r = run_scenario(&s, &jobs, &inference).expect("fault scenario completes");
            rows.push(vec![
                label.to_string(),
                format!("{rate}"),
                format!("{:.0}", r.jct.mean),
                format!("{:.0}", r.queuing.mean),
                r.fault.restarts.to_string(),
                r.fault.elastic_absorbed.to_string(),
                format!("{:.1}", r.fault.work_lost_s / 3_600.0),
                r.fault.reclaim_deadline_violations.to_string(),
            ]);
            res.series.push((
                format!("{label}@{rate}"),
                vec![
                    r.jct.mean,
                    r.queuing.mean,
                    f64::from(r.fault.restarts),
                    f64::from(r.fault.elastic_absorbed),
                    r.fault.work_lost_s,
                ],
            ));
            res.reports.push(r);
        }
    }
    lyra_obs::emitln!("Robustness: JCT and fault accounting under rising crash rates");
    lyra_obs::emitln!("{}", render(&rows));
    res
}
