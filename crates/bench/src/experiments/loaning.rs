//! Capacity-loaning deep dive: Table 7, Figures 9, 10 and 13, and the
//! reclaiming-vs-optimal study (§7.3).

use crate::tables::{render, render_series};
use crate::{reduction, ExperimentResult, Scale};
use lyra_cluster::orchestrator::ReclaimPolicy;
use lyra_core::reclaim::{
    reclaim_exhaustive_optimal, reclaim_random, reclaim_scf, reclaim_servers, CostModel,
    JobFootprint, ReclaimRequest, ReclaimServerView,
};
use lyra_core::{JobId, ServerId};
use lyra_sim::{run_scenario, transform, Scenario, SimReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::time::Instant;

fn result(experiment: &str, scale: Scale) -> ExperimentResult {
    ExperimentResult {
        experiment: experiment.to_string(),
        scale: format!("{scale:?}"),
        series: Vec::new(),
        reports: Vec::new(),
    }
}

fn run(
    mut scenario: Scenario,
    scale: Scale,
    jobs: &lyra_trace::JobTrace,
    inf: &lyra_trace::InferenceTrace,
) -> SimReport {
    scenario.cluster = scale.cluster_config();
    run_scenario(&scenario, jobs, inf).expect("scenario completes")
}

/// Table 7: queuing/JCT of jobs that ran on on-loan servers, Baseline vs
/// Lyra-loaning.
pub fn tab7(scale: Scale) -> ExperimentResult {
    let (jobs, inference) = scale.traces(70);
    let baseline = run(Scenario::baseline(), scale, &jobs, &inference);
    let lyra = run(
        Scenario::loaning_only(ReclaimPolicy::Lyra, "loan-lyra"),
        scale,
        &jobs,
        &inference,
    );
    // Baseline has no on-loan servers: compare the *same* jobs — those
    // that ran on loan under Lyra — against their Baseline outcomes.
    let loan_ids: HashSet<u64> = lyra
        .records
        .iter()
        .filter(|r| r.ran_on_loan)
        .map(|r| r.id.0)
        .collect();
    let base_q: Vec<f64> = baseline
        .records
        .iter()
        .filter(|r| loan_ids.contains(&r.id.0))
        .map(|r| r.queue_s)
        .collect();
    let base_j: Vec<f64> = baseline
        .records
        .iter()
        .filter(|r| loan_ids.contains(&r.id.0))
        .filter_map(|r| r.jct_s())
        .collect();
    let bq = lyra_sim::percentiles(&base_q);
    let bj = lyra_sim::percentiles(&base_j);
    let mut rows = vec![vec![
        "Scheme".to_string(),
        "QT mean".to_string(),
        "QT p50".to_string(),
        "QT p95".to_string(),
        "JCT mean".to_string(),
        "JCT p50".to_string(),
        "JCT p95".to_string(),
    ]];
    rows.push(vec![
        "Baseline".into(),
        format!("{:.0}", bq.mean),
        format!("{:.0}", bq.p50),
        format!("{:.0}", bq.p95),
        format!("{:.0}", bj.mean),
        format!("{:.0}", bj.p50),
        format!("{:.0}", bj.p95),
    ]);
    rows.push(vec![
        "Lyra".into(),
        format!("{:.0}", lyra.on_loan_queuing.mean),
        format!("{:.0}", lyra.on_loan_queuing.p50),
        format!("{:.0}", lyra.on_loan_queuing.p95),
        format!("{:.0}", lyra.on_loan_jct.mean),
        format!("{:.0}", lyra.on_loan_jct.p50),
        format!("{:.0}", lyra.on_loan_jct.p95),
    ]);
    lyra_obs::emitln!(
        "Table 7: jobs running on on-loan servers ({} jobs)",
        loan_ids.len()
    );
    lyra_obs::emitln!("{}", render(&rows));
    lyra_obs::emitln!(
        "median queuing reduction {:.2}x, p95 {:.2}x",
        reduction(bq.p50.max(1.0), lyra.on_loan_queuing.p50.max(1.0)),
        reduction(bq.p95.max(1.0), lyra.on_loan_queuing.p95.max(1.0)),
    );
    let mut res = result("tab7", scale);
    res.reports = vec![baseline, lyra];
    res
}

/// Figure 9: daily average usage of on-loan servers.
pub fn fig9(scale: Scale) -> ExperimentResult {
    let (jobs, inference) = scale.traces(90);
    let lyra = run(
        Scenario::loaning_only(ReclaimPolicy::Lyra, "loan-lyra"),
        scale,
        &jobs,
        &inference,
    );
    // Daily averages of hours with loaned capacity.
    let daily: Vec<f64> = lyra
        .hourly_on_loan_server_usage
        .chunks(24)
        .map(|day| {
            let active: Vec<f64> = day.iter().copied().filter(|u| *u > 0.0).collect();
            if active.is_empty() {
                0.0
            } else {
                active.iter().sum::<f64>() / active.len() as f64
            }
        })
        .collect();
    let xs: Vec<f64> = (0..daily.len()).map(|d| d as f64).collect();
    lyra_obs::emitln!(
        "{}",
        render_series("Figure 9: daily avg on-loan server usage", &xs, &daily)
    );
    lyra_obs::emitln!(
        "on-loan server usage {:.2} (GPU-level {:.2})",
        lyra.on_loan_server_usage, lyra.on_loan_usage
    );
    let mut res = result("fig9", scale);
    res.series.push(("daily_on_loan_usage".into(), daily));
    res.reports = vec![lyra];
    res
}

/// Figure 10: preemption ratio and collateral damage under
/// Random/SCF/Lyra, with elastic scaling disabled and enabled.
pub fn fig10(scale: Scale) -> ExperimentResult {
    let (jobs, inference) = scale.traces(100);
    let mut res = result("fig10", scale);
    let mut rows = vec![vec![
        "Scheme".to_string(),
        "Scaling".to_string(),
        "Preemption ratio".to_string(),
        "Collateral damage".to_string(),
        "Flex satisfied".to_string(),
    ]];
    for (scaling, label) in [(false, "disabled"), (true, "enabled")] {
        for policy in [
            ReclaimPolicy::Random,
            ReclaimPolicy::Scf,
            ReclaimPolicy::Lyra,
        ] {
            let name = format!("{policy:?}-scaling-{label}");
            let scenario = if scaling {
                let mut s = Scenario::basic();
                s.loaning = Some(policy);
                s.name = name.clone();
                s
            } else {
                Scenario::loaning_only(policy, &name)
            };
            let r = run(scenario, scale, &jobs, &inference);
            rows.push(vec![
                format!("{policy:?}"),
                label.to_string(),
                format!("{:.2}%", r.preemption_ratio * 100.0),
                format!("{:.1}%", r.collateral_damage * 100.0),
                format!("{:.1}%", r.flex_satisfied * 100.0),
            ]);
            res.series.push((
                name,
                vec![r.preemption_ratio, r.collateral_damage, r.flex_satisfied],
            ));
            res.reports.push(r);
        }
    }
    lyra_obs::emitln!("Figure 10: reclaiming heuristic comparison");
    lyra_obs::emitln!("{}", render(&rows));
    res
}

/// Figure 13: sweeping the checkpointing fraction in the Ideal scenario.
pub fn fig13(scale: Scale) -> ExperimentResult {
    let (base_jobs, inference) = scale.traces(130);
    let mut ideal_jobs = base_jobs.clone();
    transform::idealize(&mut ideal_jobs);

    // Reference: loaning-only default (no checkpoints).
    let reference = run(
        Scenario::loaning_only(ReclaimPolicy::Lyra, "no-ckpt"),
        scale,
        &base_jobs,
        &inference,
    );
    let mut res = result("fig13", scale);
    let fractions = [0.2, 0.5, 0.8, 1.0];
    let mut qs = Vec::new();
    let mut js = Vec::new();
    let mut ps = Vec::new();
    for &f in &fractions {
        let mut jobs = ideal_jobs.clone();
        transform::set_checkpoint_fraction(&mut jobs, f, 131);
        let mut s = Scenario::ideal();
        s.name = format!("ckpt-{:.0}", f * 100.0);
        let r = run(s, scale, &jobs, &inference);
        qs.push(reduction(reference.queuing.mean, r.queuing.mean));
        js.push(reduction(reference.jct.mean, r.jct.mean));
        ps.push(r.preemption_ratio);
        res.reports.push(r);
    }
    let xs: Vec<f64> = fractions.iter().map(|f| f * 100.0).collect();
    lyra_obs::emitln!(
        "{}",
        render_series("Figure 13: queuing reduction vs % checkpointed", &xs, &qs)
    );
    lyra_obs::emitln!(
        "{}",
        render_series("Figure 13: JCT reduction vs % checkpointed", &xs, &js)
    );
    lyra_obs::emitln!(
        "{}",
        render_series("Figure 13: preemption ratio vs % checkpointed", &xs, &ps)
    );
    res.series.push(("queuing_reduction".into(), qs));
    res.series.push(("jct_reduction".into(), js));
    res.series.push(("preemption_ratio".into(), ps));
    res.reports.push(reference);
    res
}

/// Builds a random reclaim instance of the given size.
fn random_instance(
    rng: &mut StdRng,
    n_servers: usize,
    n_jobs: usize,
    need: usize,
) -> ReclaimRequest {
    let mut servers: Vec<ReclaimServerView> = (0..n_servers)
        .map(|i| ReclaimServerView {
            id: ServerId(i as u32),
            total_gpus: 8,
            jobs: vec![],
        })
        .collect();
    let mut jobs = Vec::new();
    for j in 0..n_jobs {
        let span = rng.gen_range(1..=3usize).min(n_servers);
        let mut placed = 0;
        let mut hosts = HashSet::new();
        let mut tries = 0;
        while hosts.len() < span && tries < 32 {
            hosts.insert(rng.gen_range(0..n_servers));
            tries += 1;
        }
        for &h in &hosts {
            let used: u32 = servers[h].jobs.iter().map(|(_, g)| g).sum();
            let free = 8 - used.min(8);
            if free == 0 {
                continue;
            }
            let g = rng.gen_range(1..=free.min(4));
            servers[h].jobs.push((JobId(j as u64), g));
            placed += g;
        }
        if placed > 0 {
            let hosts_used = servers
                .iter()
                .filter(|s| s.jobs.iter().any(|(id, _)| *id == JobId(j as u64)))
                .count() as u32;
            jobs.push(JobFootprint {
                id: JobId(j as u64),
                total_servers: hosts_used,
                total_gpus: placed,
            });
        }
    }
    ReclaimRequest {
        servers,
        jobs,
        need,
    }
}

/// §7.3's optimality study: Lyra's heuristic vs the exhaustive optimum —
/// preemption parity, server overlap and running-time ratio.
pub fn reclaim_opt(scale: Scale) -> ExperimentResult {
    let trials = match scale {
        Scale::Small => 20,
        Scale::Medium => 60,
        Scale::Full => 200,
    };
    let mut rng = StdRng::seed_from_u64(0x0971);
    let mut optimal_matches = 0usize;
    let mut total = 0usize;
    let mut overlap_sum = 0.0;
    let mut lyra_time = 0.0;
    let mut opt_time = 0.0;
    let mut excess_preemptions = 0usize;
    for _ in 0..trials {
        let n_servers = rng.gen_range(4..=10usize);
        let n_jobs = rng.gen_range(2..=8usize);
        let need = rng.gen_range(1..=n_servers / 2 + 1);
        let request = random_instance(&mut rng, n_servers, n_jobs, need);
        let t0 = Instant::now();
        let lyra = reclaim_servers(&request, CostModel::ServerFraction);
        lyra_time += t0.elapsed().as_secs_f64();
        if lyra.shortfall > 0 {
            continue;
        }
        let t0 = Instant::now();
        let Some(opt) = reclaim_exhaustive_optimal(&request) else {
            continue;
        };
        opt_time += t0.elapsed().as_secs_f64();
        total += 1;
        if lyra.preempted.len() == opt.preempted.len() {
            optimal_matches += 1;
        } else {
            excess_preemptions += lyra.preempted.len() - opt.preempted.len();
        }
        let lyra_set: HashSet<ServerId> = lyra.returned.iter().copied().collect();
        let overlap = opt.returned.iter().filter(|s| lyra_set.contains(s)).count() as f64
            / opt.returned.len().max(1) as f64;
        overlap_sum += overlap;

        // Sanity: comparators never beat the optimum either.
        let scf = reclaim_scf(&request);
        let mut r = StdRng::seed_from_u64(1);
        let rnd = reclaim_random(&request, &mut r);
        assert!(scf.preempted.len() >= opt.preempted.len());
        assert!(rnd.preempted.len() >= opt.preempted.len());
    }
    // Timing on one larger instance, where the exponential blow-up is
    // visible (the aggregate over tiny instances is all timer noise).
    let big = random_instance(&mut rng, 16, 20, 12);
    let t0 = Instant::now();
    let reps = 200;
    for _ in 0..reps {
        let _ = reclaim_servers(&big, CostModel::ServerFraction);
    }
    let lyra_big = t0.elapsed().as_secs_f64() / f64::from(reps);
    let t0 = Instant::now();
    let _ = reclaim_exhaustive_optimal(&big);
    let opt_big = t0.elapsed().as_secs_f64();
    lyra_obs::emitln!(
        "Reclaiming vs optimal over {total} feasible instances:\n\
         optimal-preemption matches: {:.0}% (excess preemptions when not: {excess_preemptions})\n\
         mean server overlap with optimal: {:.0}% (paper: 84%)\n\
         running time on a 16-server/20-job instance: optimal/lyra = {:.0}x \
         (grows exponentially with jobs; paper reports ~420,000x at production scale)",
        100.0 * optimal_matches as f64 / total.max(1) as f64,
        100.0 * overlap_sum / total.max(1) as f64,
        opt_big / lyra_big.max(1e-12),
    );
    let _ = (lyra_time, opt_time);
    let mut res = result("reclaim-opt", scale);
    res.series.push((
        "summary".into(),
        vec![
            optimal_matches as f64 / total.max(1) as f64,
            overlap_sum / total.max(1) as f64,
            opt_time / lyra_time.max(1e-12),
        ],
    ));
    res
}
