//! One module per experiment group; see DESIGN.md's experiment index.
//!
//! Every experiment regenerates one table or figure of the paper: it
//! builds the traces for the requested [`Scale`], runs the scenarios the
//! paper compares, prints the same rows/series the paper reports and
//! returns an [`ExperimentResult`] for JSON archival.

pub mod extensions;
pub mod faults;
pub mod jobsched;
pub mod loaning;
pub mod mainline;
pub mod motivation;
pub mod testbed;

use crate::{ExperimentResult, Scale};

/// All experiment ids, in DESIGN.md order.
pub const ALL: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "tab1",
    "tab234",
    "tab5",
    "fig7",
    "fig8",
    "tab6",
    "tab7",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "tab8",
    "tab9",
    "fig1415",
    "fig16",
    "tab10",
    "fig17",
    "headline",
    "reclaim-opt",
    "lstm",
    "ext-las",
    "ext-phase2",
    "ext-predictor",
    "ext-costmodel",
    "ext-granularity",
    "ext-slo",
    "ext-interval",
    "faults",
];

/// Dispatches one experiment by id. Returns `None` for unknown ids.
pub fn run(id: &str, scale: Scale) -> Option<ExperimentResult> {
    Some(match id {
        "fig1" => motivation::fig1(scale),
        "fig2" => motivation::fig2(scale),
        "fig3" => motivation::fig3(),
        "tab1" => motivation::tab1(),
        "tab234" => motivation::tab234(),
        "tab5" => mainline::tab5(scale),
        "headline" => mainline::headline(scale),
        "fig7" => mainline::fig7(scale),
        "fig8" => mainline::fig8(scale),
        "tab6" => mainline::tab6(scale),
        "tab7" => loaning::tab7(scale),
        "fig9" => loaning::fig9(scale),
        "fig10" => loaning::fig10(scale),
        "fig11" => mainline::fig11(scale),
        "fig12" => jobsched::fig12(scale),
        "fig13" => loaning::fig13(scale),
        "tab8" => jobsched::tab8(scale),
        "tab9" => jobsched::tab9(scale),
        "fig1415" => jobsched::fig1415(scale),
        "fig16" => jobsched::fig16(scale),
        "tab10" => testbed::tab10(),
        "fig17" => testbed::fig17(),
        "reclaim-opt" => loaning::reclaim_opt(scale),
        "lstm" => motivation::lstm(scale),
        "ext-las" => extensions::ext_las(scale),
        "ext-phase2" => extensions::ext_phase2(scale),
        "ext-predictor" => extensions::ext_predictor(scale),
        "ext-costmodel" => extensions::ext_costmodel(scale),
        "ext-granularity" => extensions::ext_granularity(scale),
        "ext-slo" => extensions::ext_slo(scale),
        "ext-interval" => extensions::ext_interval(scale),
        "faults" => faults::faults(scale),
        _ => return None,
    })
}
