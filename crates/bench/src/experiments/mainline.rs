//! The headline results: Table 5, Figures 7, 8 and 11, Table 6.

use crate::tables::{render, render_series, table5_header, table5_row};
use crate::{reduction, ExperimentResult, Scale};
use lyra_cluster::orchestrator::ReclaimPolicy;
use lyra_sim::{run_scenario, transform, Scenario, SimReport};
use lyra_trace::{InferenceTrace, JobTrace};

fn result(experiment: &str, scale: Scale) -> ExperimentResult {
    ExperimentResult {
        experiment: experiment.to_string(),
        scale: format!("{scale:?}"),
        series: Vec::new(),
        reports: Vec::new(),
    }
}

fn with_cluster(mut s: Scenario, scale: Scale) -> Scenario {
    s.cluster = scale.cluster_config();
    s
}

/// Runs one Table 5 row: a scenario over a (possibly transformed) trace.
fn row(scenario: Scenario, scale: Scale, jobs: &JobTrace, inference: &InferenceTrace) -> SimReport {
    run_scenario(&with_cluster(scenario, scale), jobs, inference).expect("scenario completes")
}

/// Table 5: the 14 scenario × scheme rows, run on worker threads.
pub fn tab5(scale: Scale) -> ExperimentResult {
    let (base_jobs, inference) = scale.traces(5);

    // Scenario-specific traces.
    let mut advanced_jobs = base_jobs.clone();
    transform::add_hetero_fraction(&mut advanced_jobs, 0.10, 55);
    let mut hetero_jobs = base_jobs.clone();
    transform::heterogeneous_only(&mut hetero_jobs, 0.10, 56);
    let mut ideal_jobs = base_jobs.clone();
    transform::idealize(&mut ideal_jobs);

    let named = |name: &str| {
        let mut s = Scenario::basic();
        s.name = name.into();
        s
    };
    // (label, scenario, trace, reports "Overall/Preempt" columns apply)
    let rows_spec: Vec<(&str, Scenario, &JobTrace, bool)> = vec![
        ("Baseline", Scenario::baseline(), &base_jobs, true),
        ("Basic", Scenario::basic(), &base_jobs, true),
        ("Advanced", named("advanced"), &advanced_jobs, true),
        ("Heterogeneous", named("heterogeneous"), &hetero_jobs, true),
        ("Ideal", Scenario::ideal(), &ideal_jobs, true),
        ("Opportunity", Scenario::opportunistic(), &base_jobs, true),
        (
            "Random",
            Scenario::loaning_only(ReclaimPolicy::Random, "loan-random"),
            &base_jobs,
            true,
        ),
        (
            "SCF",
            Scenario::loaning_only(ReclaimPolicy::Scf, "loan-scf"),
            &base_jobs,
            true,
        ),
        (
            "Lyra (loaning)",
            Scenario::loaning_only(ReclaimPolicy::Lyra, "loan-lyra"),
            &base_jobs,
            true,
        ),
        (
            "Gandiva",
            Scenario::elastic_only("gandiva", "gandiva"),
            &base_jobs,
            false,
        ),
        (
            "AFS",
            Scenario::elastic_only("afs", "afs"),
            &base_jobs,
            false,
        ),
        (
            "Pollux",
            Scenario::elastic_only("pollux", "pollux"),
            &base_jobs,
            false,
        ),
        (
            "Lyra (scaling)",
            Scenario::elastic_only("lyra", "lyra-scaling"),
            &base_jobs,
            false,
        ),
        ("Lyra+TunedJobs", Scenario::lyra_tuned(), &base_jobs, false),
    ];

    let loaning_flags: Vec<bool> = rows_spec.iter().map(|(_, _, _, l)| *l).collect();
    let tasks: Vec<(String, _)> = rows_spec
        .into_iter()
        .map(|(label, scenario, jobs, _)| {
            let inference = &inference;
            (label.to_string(), move || {
                row(scenario, scale, jobs, inference)
            })
        })
        .collect();
    let reports = crate::run_parallel(tasks);

    let mut rows = vec![table5_header()];
    for ((label, r), loaning) in reports.iter().zip(&loaning_flags) {
        rows.push(table5_row(label, r, *loaning));
    }
    lyra_obs::emitln!("Table 5: simulation results");
    lyra_obs::emitln!("{}", render(&rows));

    let baseline = &reports[0].1;
    let basic = &reports[1].1;
    lyra_obs::emitln!(
        "Basic vs Baseline: queuing reduction {:.2}x, JCT reduction {:.2}x, \
         overall usage {:.0}% → {:.0}%",
        reduction(baseline.queuing.mean, basic.queuing.mean),
        reduction(baseline.jct.mean, basic.jct.mean),
        baseline.overall_usage * 100.0,
        basic.overall_usage * 100.0,
    );

    let mut res = result("tab5", scale);
    for (_, r) in reports {
        res.reports.push(r);
    }
    res
}

/// The headline rows only (Baseline, Basic, loaning-only, scaling-only)
/// — cheap enough to run at `--full` scale for the paper's main claims.
pub fn headline(scale: Scale) -> ExperimentResult {
    let (base_jobs, inference) = scale.traces(5);
    let reports: Vec<(String, SimReport)> = vec![
        (
            "Baseline".into(),
            row(Scenario::baseline(), scale, &base_jobs, &inference),
        ),
        (
            "Basic".into(),
            row(Scenario::basic(), scale, &base_jobs, &inference),
        ),
        (
            "Lyra (loaning)".into(),
            row(
                Scenario::loaning_only(
                    lyra_cluster::orchestrator::ReclaimPolicy::Lyra,
                    "loan-lyra",
                ),
                scale,
                &base_jobs,
                &inference,
            ),
        ),
        (
            "Lyra (scaling)".into(),
            row(
                Scenario::elastic_only("lyra", "lyra-scaling"),
                scale,
                &base_jobs,
                &inference,
            ),
        ),
    ];
    let mut rows = vec![table5_header()];
    for (label, r) in &reports {
        rows.push(table5_row(label, r, true));
    }
    lyra_obs::emitln!("Headline rows (Table 5 subset)");
    lyra_obs::emitln!("{}", render(&rows));
    let baseline = &reports[0].1;
    for (label, r) in &reports[1..] {
        lyra_obs::emitln!(
            "{label}: queuing {:.2}x, JCT {:.2}x over Baseline",
            reduction(baseline.queuing.mean, r.queuing.mean),
            reduction(baseline.jct.mean, r.jct.mean),
        );
    }
    let mut res = result("headline", scale);
    for (_, r) in reports {
        res.reports.push(r);
    }
    res
}

/// Figure 7: hourly combined usage for 48 hours, Baseline vs Basic vs
/// Ideal.
pub fn fig7(scale: Scale) -> ExperimentResult {
    let (base_jobs, inference) = scale.traces(7);
    let mut ideal_jobs = base_jobs.clone();
    transform::idealize(&mut ideal_jobs);
    let baseline = row(Scenario::baseline(), scale, &base_jobs, &inference);
    let basic = row(Scenario::basic(), scale, &base_jobs, &inference);
    let ideal = row(Scenario::ideal(), scale, &ideal_jobs, &inference);
    let hours = 48.min(baseline.hourly_overall_usage.len());
    let xs: Vec<f64> = (0..hours).map(|h| h as f64).collect();
    let mut res = result("fig7", scale);
    for (label, r) in [
        ("Baseline", &baseline),
        ("Basic", &basic),
        ("Ideal", &ideal),
    ] {
        let ys: Vec<f64> = r.hourly_overall_usage.iter().take(hours).copied().collect();
        lyra_obs::emitln!(
            "{}",
            render_series(
                &format!("Figure 7: {label} hourly combined usage"),
                &xs,
                &ys
            )
        );
        res.series.push((label.to_string(), ys));
    }
    res.reports = vec![baseline, basic, ideal];
    res
}

/// Figure 8: queuing/JCT reductions over Baseline under imperfect
/// (per-worker-loss) scaling, Basic and Ideal.
pub fn fig8(scale: Scale) -> ExperimentResult {
    let (base_jobs, inference) = scale.traces(8);
    let baseline = row(Scenario::baseline(), scale, &base_jobs, &inference);

    let mut basic_jobs = base_jobs.clone();
    transform::imperfect_scaling(&mut basic_jobs, 0.2);
    let basic = row(Scenario::basic(), scale, &basic_jobs, &inference);

    let mut ideal_jobs = base_jobs.clone();
    transform::idealize(&mut ideal_jobs);
    transform::imperfect_scaling(&mut ideal_jobs, 0.2);
    let ideal = row(Scenario::ideal(), scale, &ideal_jobs, &inference);

    let mut rows = vec![vec![
        "Scenario".to_string(),
        "Queuing reduction".to_string(),
        "JCT reduction".to_string(),
    ]];
    let mut res = result("fig8", scale);
    for (label, r) in [("Basic", &basic), ("Ideal", &ideal)] {
        let q = reduction(baseline.queuing.mean, r.queuing.mean);
        let j = reduction(baseline.jct.mean, r.jct.mean);
        rows.push(vec![
            label.to_string(),
            format!("{q:.2}x"),
            format!("{j:.2}x"),
        ]);
        res.series.push((label.to_string(), vec![q, j]));
    }
    lyra_obs::emitln!("Figure 8: gains over Baseline with non-linear scaling (20% per-worker loss)");
    lyra_obs::emitln!("{}", render(&rows));
    res.reports = vec![baseline, basic, ideal];
    res
}

/// Table 6: Lyra without the special placement of elastic jobs.
pub fn tab6(scale: Scale) -> ExperimentResult {
    let (base_jobs, inference) = scale.traces(6);
    let mut advanced_jobs = base_jobs.clone();
    transform::add_hetero_fraction(&mut advanced_jobs, 0.10, 65);
    let mut ideal_jobs = base_jobs.clone();
    transform::idealize(&mut ideal_jobs);

    let naive = |name: &str| {
        let mut s = Scenario::basic();
        s.policy = "lyra-naive-placement".to_string();
        s.name = name.into();
        s
    };
    let mut ideal_naive = naive("ideal-naive");
    ideal_naive.sim.hetero_efficiency = 1.0;

    let rows_data = vec![
        (
            "Basic",
            row(naive("basic-naive"), scale, &base_jobs, &inference),
        ),
        (
            "Advanced",
            row(naive("advanced-naive"), scale, &advanced_jobs, &inference),
        ),
        ("Ideal", row(ideal_naive, scale, &ideal_jobs, &inference)),
    ];
    let mut rows = vec![vec![
        "Scenario".to_string(),
        "Avg queuing (s)".to_string(),
        "Avg JCT (s)".to_string(),
        "Preemption ratio".to_string(),
    ]];
    let mut res = result("tab6", scale);
    for (label, r) in rows_data {
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", r.queuing.mean),
            format!("{:.0}", r.jct.mean),
            format!("{:.2}%", r.preemption_ratio * 100.0),
        ]);
        res.reports.push(r);
    }
    lyra_obs::emitln!("Table 6: naive BFD placement (no special elastic treatment)");
    lyra_obs::emitln!("{}", render(&rows));
    res
}

/// Figure 11: sweeping the heterogeneous-job fraction in the
/// Heterogeneous scenario.
pub fn fig11(scale: Scale) -> ExperimentResult {
    let (base_jobs, inference) = scale.traces(11);
    let baseline = row(Scenario::baseline(), scale, &base_jobs, &inference);
    let mut res = result("fig11", scale);
    let mut qs = Vec::new();
    let mut js = Vec::new();
    let fractions = [0.10, 0.30, 0.50, 0.70, 0.90];
    for &f in &fractions {
        let mut jobs = base_jobs.clone();
        transform::heterogeneous_only(&mut jobs, f, 110 + (f * 100.0) as u64);
        let mut s = Scenario::basic();
        s.name = format!("hetero-{:.0}", f * 100.0);
        let r = row(s, scale, &jobs, &inference);
        qs.push(reduction(baseline.queuing.mean, r.queuing.mean));
        js.push(reduction(baseline.jct.mean, r.jct.mean));
        res.reports.push(r);
    }
    let xs: Vec<f64> = fractions.iter().map(|f| f * 100.0).collect();
    lyra_obs::emitln!(
        "{}",
        render_series("Figure 11: queuing reduction vs % hetero jobs", &xs, &qs)
    );
    lyra_obs::emitln!(
        "{}",
        render_series("Figure 11: JCT reduction vs % hetero jobs", &xs, &js)
    );
    res.series.push(("queuing_reduction".into(), qs));
    res.series.push(("jct_reduction".into(), js));
    res
}
