//! Job-scheduling deep dive: Tables 8 and 9, Figures 12, 14–16.

use crate::tables::{render, render_series, table8_header, table8_row};
use crate::{reduction, ExperimentResult, Scale};
use lyra_predictor::RuntimeEstimatorConfig;
use lyra_sim::{run_scenario, transform, Scenario, SimReport};
use lyra_trace::bootstrap_trace;

fn result(experiment: &str, scale: Scale) -> ExperimentResult {
    ExperimentResult {
        experiment: experiment.to_string(),
        scale: format!("{scale:?}"),
        series: Vec::new(),
        reports: Vec::new(),
    }
}

fn run(
    mut scenario: Scenario,
    scale: Scale,
    jobs: &lyra_trace::JobTrace,
    inf: &lyra_trace::InferenceTrace,
) -> SimReport {
    scenario.cluster = scale.cluster_config();
    run_scenario(&scenario, jobs, inf).expect("scenario completes")
}

/// The elastic-scaling scheme set of §7.4.
fn schemes() -> Vec<(&'static str, Scenario)> {
    vec![
        ("Baseline", Scenario::baseline()),
        (
            "Gandiva",
            Scenario::elastic_only("gandiva", "gandiva"),
        ),
        ("AFS", Scenario::elastic_only("afs", "afs")),
        (
            "Pollux",
            Scenario::elastic_only("pollux", "pollux"),
        ),
        ("Lyra", Scenario::elastic_only("lyra", "lyra")),
        ("Lyra+TunedJobs", Scenario::lyra_tuned()),
    ]
}

/// Table 8: queuing and JCT percentiles for every job-scheduling scheme
/// (Basic, no loaning).
pub fn tab8(scale: Scale) -> ExperimentResult {
    let (jobs, inference) = scale.traces(80);
    let mut rows = vec![table8_header()];
    let mut res = result("tab8", scale);
    for (label, scenario) in schemes() {
        let r = run(scenario, scale, &jobs, &inference);
        rows.push(table8_row(label, &r));
        res.reports.push(r);
    }
    lyra_obs::emitln!("Table 8: queuing time and JCT percentiles (Basic)");
    lyra_obs::emitln!("{}", render(&rows));
    res
}

/// Table 9: Lyra's gains under running-time misprediction.
pub fn tab9(scale: Scale) -> ExperimentResult {
    let (jobs, inference) = scale.traces(90);
    let baseline = run(Scenario::baseline(), scale, &jobs, &inference);
    let mut rows = vec![vec![
        "% wrong".to_string(),
        "Queuing reduction".to_string(),
        "JCT reduction".to_string(),
    ]];
    let mut res = result("tab9", scale);
    for wrong in [0.0, 0.2, 0.4, 0.6] {
        let mut s = Scenario::basic();
        s.name = format!("wrong-{:.0}", wrong * 100.0);
        s.estimator = RuntimeEstimatorConfig {
            wrong_fraction: wrong,
            max_error: 0.25,
            seed: 0x79 + (wrong * 100.0) as u64,
        };
        let r = run(s, scale, &jobs, &inference);
        let q = reduction(baseline.queuing.mean, r.queuing.mean);
        let j = reduction(baseline.jct.mean, r.jct.mean);
        rows.push(vec![
            format!("{:.0}%", wrong * 100.0),
            format!("{q:.2}"),
            format!("{j:.2}"),
        ]);
        res.series.push((format!("wrong-{wrong}"), vec![q, j]));
        res.reports.push(r);
    }
    lyra_obs::emitln!("Table 9: sensitivity to running-time estimation error (≤25% margin)");
    lyra_obs::emitln!("{}", render(&rows));
    res.reports.push(baseline);
    res
}

/// Figures 14–15: queuing and JCT reductions over Baseline as the elastic
/// fraction grows from 20% to 100%.
pub fn fig1415(scale: Scale) -> ExperimentResult {
    let (base_jobs, inference) = scale.traces(1415);
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    let mut res = result("fig1415", scale);
    let mut table = vec![{
        let mut h = vec!["Scheme".to_string()];
        for f in &fractions {
            h.push(format!("{:.0}% Q", f * 100.0));
        }
        for f in &fractions {
            h.push(format!("{:.0}% J", f * 100.0));
        }
        h
    }];
    for (label, scenario) in schemes() {
        if label == "Baseline" {
            continue;
        }
        let mut qrow = Vec::new();
        let mut jrow = Vec::new();
        for (fi, &f) in fractions.iter().enumerate() {
            let mut jobs = base_jobs.clone();
            transform::set_elastic_fraction(&mut jobs, f, 1400 + fi as u64);
            let baseline = run(Scenario::baseline(), scale, &jobs, &inference);
            let mut s = scenario.clone();
            s.name = format!("{label}-elastic-{:.0}", f * 100.0);
            let r = run(s, scale, &jobs, &inference);
            qrow.push(reduction(baseline.queuing.mean, r.queuing.mean));
            jrow.push(reduction(baseline.jct.mean, r.jct.mean));
        }
        let mut row = vec![label.to_string()];
        row.extend(qrow.iter().map(|v| format!("{v:.2}")));
        row.extend(jrow.iter().map(|v| format!("{v:.2}")));
        table.push(row);
        res.series.push((format!("{label}-queuing"), qrow));
        res.series.push((format!("{label}-jct"), jrow));
    }
    lyra_obs::emitln!("Figures 14-15: reductions over Baseline vs % elastic jobs");
    lyra_obs::emitln!("{}", render(&table));
    res
}

/// Figure 16: Lyra under non-linear scaling as the elastic fraction
/// grows; dots = linear scaling reference.
pub fn fig16(scale: Scale) -> ExperimentResult {
    let (base_jobs, inference) = scale.traces(16);
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    let mut res = result("fig16", scale);
    let mut linear_j = Vec::new();
    let mut lossy_j = Vec::new();
    let mut linear_q = Vec::new();
    let mut lossy_q = Vec::new();
    for (fi, &f) in fractions.iter().enumerate() {
        let mut jobs = base_jobs.clone();
        transform::set_elastic_fraction(&mut jobs, f, 1600 + fi as u64);
        let baseline = run(Scenario::baseline(), scale, &jobs, &inference);
        let lyra = Scenario::elastic_only("lyra", "lyra-linear");
        let r_lin = run(lyra, scale, &jobs, &inference);
        let mut lossy_jobs = jobs.clone();
        transform::imperfect_scaling(&mut lossy_jobs, 0.2);
        let lyra = Scenario::elastic_only("lyra", "lyra-lossy");
        let r_loss = run(lyra, scale, &lossy_jobs, &inference);
        linear_j.push(reduction(baseline.jct.mean, r_lin.jct.mean));
        lossy_j.push(reduction(baseline.jct.mean, r_loss.jct.mean));
        linear_q.push(reduction(baseline.queuing.mean, r_lin.queuing.mean));
        lossy_q.push(reduction(baseline.queuing.mean, r_loss.queuing.mean));
    }
    let xs: Vec<f64> = fractions.iter().map(|f| f * 100.0).collect();
    lyra_obs::emitln!(
        "{}",
        render_series("Figure 16: JCT reduction, linear scaling", &xs, &linear_j)
    );
    lyra_obs::emitln!(
        "{}",
        render_series(
            "Figure 16: JCT reduction, 20% per-worker loss",
            &xs,
            &lossy_j
        )
    );
    lyra_obs::emitln!(
        "{}",
        render_series("Figure 16: queuing reduction, linear", &xs, &linear_q)
    );
    lyra_obs::emitln!(
        "{}",
        render_series("Figure 16: queuing reduction, lossy", &xs, &lossy_q)
    );
    res.series.push(("linear_jct".into(), linear_j));
    res.series.push(("lossy_jct".into(), lossy_j));
    res.series.push(("linear_queuing".into(), linear_q));
    res.series.push(("lossy_queuing".into(), lossy_q));
    res
}

/// Figure 12: ten bootstrapped shorter traces, Basic and Ideal gains over
/// their own Baselines.
pub fn fig12(scale: Scale) -> ExperimentResult {
    let (base_jobs, inference) = scale.traces(12);
    let resample_days = (scale.days() * 2 / 3).max(1);
    let mut res = result("fig12", scale);
    let mut basic_q = Vec::new();
    let mut basic_j = Vec::new();
    let mut ideal_q = Vec::new();
    let mut ideal_j = Vec::new();
    for seed in 0..10u64 {
        let jobs = bootstrap_trace(&base_jobs, resample_days, seed);
        let baseline = run(Scenario::baseline(), scale, &jobs, &inference);
        let basic = run(Scenario::basic(), scale, &jobs, &inference);
        let mut ideal_jobs = jobs.clone();
        transform::idealize(&mut ideal_jobs);
        let ideal = run(Scenario::ideal(), scale, &ideal_jobs, &inference);
        basic_q.push(reduction(baseline.queuing.mean, basic.queuing.mean));
        basic_j.push(reduction(baseline.jct.mean, basic.jct.mean));
        ideal_q.push(reduction(baseline.queuing.mean, ideal.queuing.mean));
        ideal_j.push(reduction(baseline.jct.mean, ideal.jct.mean));
    }
    let xs: Vec<f64> = (0..10).map(f64::from).collect();
    lyra_obs::emitln!(
        "{}",
        render_series(
            "Figure 12: Basic queuing reduction per trace",
            &xs,
            &basic_q
        )
    );
    lyra_obs::emitln!(
        "{}",
        render_series("Figure 12: Basic JCT reduction per trace", &xs, &basic_j)
    );
    lyra_obs::emitln!(
        "{}",
        render_series(
            "Figure 12: Ideal queuing reduction per trace",
            &xs,
            &ideal_q
        )
    );
    lyra_obs::emitln!(
        "{}",
        render_series("Figure 12: Ideal JCT reduction per trace", &xs, &ideal_j)
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    lyra_obs::emitln!(
        "means: Basic {:.2}x/{:.2}x, Ideal {:.2}x/{:.2}x (queuing/JCT)",
        mean(&basic_q),
        mean(&basic_j),
        mean(&ideal_q),
        mean(&ideal_j),
    );
    res.series.push(("basic_queuing".into(), basic_q));
    res.series.push(("basic_jct".into(), basic_j));
    res.series.push(("ideal_queuing".into(), ideal_q));
    res.series.push(("ideal_jct".into(), ideal_j));
    res
}
