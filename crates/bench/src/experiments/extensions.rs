//! Extension experiments beyond the paper's evaluation, covering its §8
//! discussion points and the future work named in §10:
//!
//! * `ext-las` — information-agnostic scheduling: Lyra with Tiresias-style
//!   least-attained-service phase-1 ordering (no running-time estimates)
//!   against SJF with perfect and badly wrong estimates.
//! * `ext-phase2` — the knapsack vs a greedy marginal-gain phase 2 (the
//!   design choice §2.3 argues for).
//! * `ext-predictor` — the §6 LSTM predictor's effect: reclaiming in
//!   advance of predicted traffic vs purely reactive reclaiming.
//! * `ext-costmodel` — end-to-end impact of the three preemption-cost
//!   definitions of Table 1.
//! * `ext-granularity` — §8's fine-grained sharing: the same GPU capacity
//!   loaned in 8-, 4- and 2-GPU units.

use crate::tables::render;
use crate::{reduction, ExperimentResult, Scale};
use lyra_cluster::orchestrator::ReclaimPolicy;
use lyra_cluster::state::ClusterConfig;
use lyra_sim::{run_scenario, Scenario, SimReport};

fn result(experiment: &str, scale: Scale) -> ExperimentResult {
    ExperimentResult {
        experiment: experiment.to_string(),
        scale: format!("{scale:?}"),
        series: Vec::new(),
        reports: Vec::new(),
    }
}

fn run(
    mut scenario: Scenario,
    scale: Scale,
    jobs: &lyra_trace::JobTrace,
    inf: &lyra_trace::InferenceTrace,
) -> SimReport {
    scenario.cluster = scale.cluster_config();
    run_scenario(&scenario, jobs, inf).expect("scenario completes")
}

/// Information-agnostic scheduling (§10's future work): LAS ordering needs
/// no estimates at all; compare against SJF with perfect and 60 %-wrong
/// estimates.
pub fn ext_las(scale: Scale) -> ExperimentResult {
    let (jobs, inference) = scale.traces(0xA5);
    let baseline = run(Scenario::baseline(), scale, &jobs, &inference);
    let sjf = run(
        Scenario::elastic_only("lyra", "lyra-sjf"),
        scale,
        &jobs,
        &inference,
    );
    let mut sjf_wrong = Scenario::elastic_only("lyra", "lyra-sjf-wrong");
    sjf_wrong.estimator.wrong_fraction = 0.6;
    let sjf_wrong = run(sjf_wrong, scale, &jobs, &inference);
    let las = run(
        Scenario::elastic_only("lyra-las", "lyra-las"),
        scale,
        &jobs,
        &inference,
    );
    let mut rows = vec![vec![
        "Variant".to_string(),
        "Estimates".to_string(),
        "QT mean".to_string(),
        "JCT mean".to_string(),
        "QT reduction".to_string(),
        "JCT reduction".to_string(),
    ]];
    let mut res = result("ext-las", scale);
    for (label, est, r) in [
        ("Lyra (SJF)", "perfect", &sjf),
        ("Lyra (SJF)", "60% wrong", &sjf_wrong),
        ("Lyra (LAS)", "none needed", &las),
    ] {
        rows.push(vec![
            label.to_string(),
            est.to_string(),
            format!("{:.0}", r.queuing.mean),
            format!("{:.0}", r.jct.mean),
            format!("{:.2}x", reduction(baseline.queuing.mean, r.queuing.mean)),
            format!("{:.2}x", reduction(baseline.jct.mean, r.jct.mean)),
        ]);
        res.series
            .push((format!("{label}/{est}"), vec![r.queuing.mean, r.jct.mean]));
    }
    lyra_obs::emitln!("Extension: information-agnostic phase 1 (LAS) vs SJF");
    lyra_obs::emitln!("{}", render(&rows));
    res.reports = vec![baseline, sjf, sjf_wrong, las];
    res
}

/// Knapsack vs greedy phase 2 (§2.3's "globally good allocation decisions
/// … outperform greedy local heuristics").
pub fn ext_phase2(scale: Scale) -> ExperimentResult {
    let (jobs, inference) = scale.traces(0xF2);
    let mckp = run(
        Scenario::elastic_only("lyra", "phase2-mckp"),
        scale,
        &jobs,
        &inference,
    );
    let greedy = run(
        Scenario::elastic_only("lyra-greedy-phase2", "phase2-greedy"),
        scale,
        &jobs,
        &inference,
    );
    let mut rows = vec![vec![
        "Phase-2 solver".to_string(),
        "QT mean".to_string(),
        "JCT mean".to_string(),
        "JCT p95".to_string(),
        "Scaling ops".to_string(),
    ]];
    let mut res = result("ext-phase2", scale);
    for (label, r) in [("MCKP (Lyra)", &mckp), ("Greedy", &greedy)] {
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", r.queuing.mean),
            format!("{:.0}", r.jct.mean),
            format!("{:.0}", r.jct.p95),
            r.scaling_ops.to_string(),
        ]);
        res.series
            .push((label.to_string(), vec![r.queuing.mean, r.jct.mean]));
    }
    lyra_obs::emitln!("Extension: phase-2 solver ablation");
    lyra_obs::emitln!("{}", render(&rows));
    res.reports = vec![mckp, greedy];
    res
}

/// The §6 LSTM predictor: reclaim in advance of predicted traffic.
pub fn ext_predictor(scale: Scale) -> ExperimentResult {
    let (jobs, inference) = scale.traces(0xED);
    let reactive = run(
        Scenario::loaning_only(ReclaimPolicy::Lyra, "reactive"),
        scale,
        &jobs,
        &inference,
    );
    let mut predictive = Scenario::loaning_only(ReclaimPolicy::Lyra, "predictive");
    predictive.use_predictor = true;
    let predictive = run(predictive, scale, &jobs, &inference);
    let mut rows = vec![vec![
        "Reclaiming".to_string(),
        "QT mean".to_string(),
        "JCT mean".to_string(),
        "Preemption".to_string(),
        "Reclaim ops".to_string(),
    ]];
    let mut res = result("ext-predictor", scale);
    for (label, r) in [("reactive", &reactive), ("LSTM-predictive", &predictive)] {
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", r.queuing.mean),
            format!("{:.0}", r.jct.mean),
            format!("{:.2}%", r.preemption_ratio * 100.0),
            r.reclaim_ops.to_string(),
        ]);
        res.series.push((
            label.to_string(),
            vec![r.queuing.mean, r.jct.mean, r.preemption_ratio],
        ));
    }
    lyra_obs::emitln!("Extension: LSTM-predictive vs reactive reclaiming (§6)");
    lyra_obs::emitln!("{}", render(&rows));
    res.reports = vec![reactive, predictive];
    res
}

/// End-to-end comparison of Table 1's three cost definitions.
pub fn ext_costmodel(scale: Scale) -> ExperimentResult {
    let (jobs, inference) = scale.traces(0xC0);
    let mut rows = vec![vec![
        "Cost model".to_string(),
        "Preemption".to_string(),
        "Collateral".to_string(),
        "QT mean".to_string(),
    ]];
    let mut res = result("ext-costmodel", scale);
    for (label, policy) in [
        ("server fraction (Lyra)", ReclaimPolicy::Lyra),
        ("GPU fraction", ReclaimPolicy::GpuFraction),
        ("job count (SCF)", ReclaimPolicy::Scf),
    ] {
        let r = run(
            Scenario::loaning_only(policy, &format!("cost-{label}")),
            scale,
            &jobs,
            &inference,
        );
        rows.push(vec![
            label.to_string(),
            format!("{:.2}%", r.preemption_ratio * 100.0),
            format!("{:.1}%", r.collateral_damage * 100.0),
            format!("{:.0}", r.queuing.mean),
        ]);
        res.series.push((
            label.to_string(),
            vec![r.preemption_ratio, r.collateral_damage],
        ));
        res.reports.push(r);
    }
    lyra_obs::emitln!("Extension: preemption-cost definitions end-to-end (Table 1)");
    lyra_obs::emitln!("{}", render(&rows));
    res
}

/// The Erlang-C latency model vs proportional busy-GPU capacity targets:
/// how much loanable capacity a principled SLO model gives up or gains.
pub fn ext_slo(scale: Scale) -> ExperimentResult {
    let (jobs, inference) = scale.traces(0x510);
    let proportional = run(
        Scenario::loaning_only(ReclaimPolicy::Lyra, "proportional"),
        scale,
        &jobs,
        &inference,
    );
    let mut s = Scenario::loaning_only(ReclaimPolicy::Lyra, "erlang-c");
    s.use_capacity_model = true;
    let erlang = run(s, scale, &jobs, &inference);
    let mut rows = vec![vec![
        "Capacity target".to_string(),
        "QT mean".to_string(),
        "JCT mean".to_string(),
        "Preemption".to_string(),
        "Loan ops".to_string(),
    ]];
    let mut res = result("ext-slo", scale);
    for (label, r) in [
        ("proportional busy GPUs", &proportional),
        ("Erlang-C mean-wait SLO", &erlang),
    ] {
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", r.queuing.mean),
            format!("{:.0}", r.jct.mean),
            format!("{:.2}%", r.preemption_ratio * 100.0),
            r.loan_ops.to_string(),
        ]);
        res.series.push((
            label.to_string(),
            vec![r.queuing.mean, r.jct.mean, r.preemption_ratio],
        ));
    }
    lyra_obs::emitln!("Extension: inference capacity target model (§4's assumption)");
    lyra_obs::emitln!("{}", render(&rows));
    res.reports = vec![proportional, erlang];
    res
}

/// Scheduling-cadence ablation: §3 runs the job scheduler "in a much
/// smaller interval than the orchestrator" — sweep the epoch length to
/// show why.
pub fn ext_interval(scale: Scale) -> ExperimentResult {
    let (jobs, inference) = scale.traces(0x1E);
    let mut rows = vec![vec![
        "Epoch (s)".to_string(),
        "QT mean".to_string(),
        "QT p50".to_string(),
        "JCT mean".to_string(),
    ]];
    let mut res = result("ext-interval", scale);
    for interval in [30.0, 60.0, 120.0, 300.0, 600.0] {
        let mut s = Scenario::basic();
        s.name = format!("epoch-{interval}");
        s.sim.scheduler_interval_s = interval;
        let r = run(s, scale, &jobs, &inference);
        rows.push(vec![
            format!("{interval:.0}"),
            format!("{:.0}", r.queuing.mean),
            format!("{:.0}", r.queuing.p50),
            format!("{:.0}", r.jct.mean),
        ]);
        res.series.push((
            format!("epoch-{interval}"),
            vec![r.queuing.mean, r.jct.mean],
        ));
        res.reports.push(r);
    }
    lyra_obs::emitln!("Extension: scheduler epoch length (§3's cadence choice)");
    lyra_obs::emitln!("{}", render(&rows));
    res
}

/// §8's fine-grained sharing: loan the same GPU capacity in smaller
/// units.
pub fn ext_granularity(scale: Scale) -> ExperimentResult {
    let (train, inf_servers) = scale.servers();
    let (jobs, inference) = scale.traces(0x64);
    let mut rows = vec![vec![
        "Loan unit".to_string(),
        "QT mean".to_string(),
        "JCT mean".to_string(),
        "Preemption".to_string(),
        "Collateral".to_string(),
    ]];
    let mut res = result("ext-granularity", scale);
    for unit in [8u32, 4, 2] {
        let factor = 8 / unit;
        let mut s = Scenario::basic();
        s.name = format!("unit-{unit}");
        s.cluster = ClusterConfig {
            training_servers: train * factor,
            inference_servers: inf_servers * factor,
            gpus_per_server: unit,
            speed: lyra_core::gpu::SpeedFactors::default(),
        };
        // The job mix must still fit the smaller units: per-worker demand
        // above the unit cannot gang onto one server... placement spans
        // servers, so only gpus_per_worker > unit jobs become infeasible;
        // clamp them.
        let mut jobs = jobs.clone();
        for j in &mut jobs.jobs {
            if j.gpus_per_worker > unit {
                // Preserve the GPU footprint with more, smaller workers.
                let ratio = j.gpus_per_worker / unit;
                j.demand *= ratio;
                if let Some(e) = j.elasticity {
                    j.elasticity =
                        Some(lyra_core::Elasticity::new(e.w_min * ratio, e.w_max * ratio));
                }
                j.gpus_per_worker = unit;
            }
        }
        let r = run_scenario(&s, &jobs, &inference).expect("granularity scenario");
        rows.push(vec![
            format!("{unit} GPUs"),
            format!("{:.0}", r.queuing.mean),
            format!("{:.0}", r.jct.mean),
            format!("{:.2}%", r.preemption_ratio * 100.0),
            format!("{:.1}%", r.collateral_damage * 100.0),
        ]);
        res.series.push((
            format!("unit-{unit}"),
            vec![
                r.queuing.mean,
                r.jct.mean,
                r.preemption_ratio,
                r.collateral_damage,
            ],
        ));
        res.reports.push(r);
    }
    lyra_obs::emitln!("Extension: loaning granularity (§8's fine-grained sharing)");
    lyra_obs::emitln!("{}", render(&rows));
    res
}
