//! # lyra-bench
//!
//! The experiment harness: one subcommand per table and figure of the
//! paper's evaluation (§7), plus Criterion micro-benchmarks for the
//! scheduling algorithms themselves.
//!
//! Run `cargo run -p lyra-bench --release -- help` for the experiment
//! list; `cargo bench` runs the micro-benchmarks. Experiments default to
//! a scaled-down cluster/trace so the whole suite completes in minutes;
//! pass `--full` for the paper-scale 15-day, 50k-job configuration.

pub mod ablate;
pub mod crash;
pub mod experiments;
pub mod golden;
pub mod perf;
pub mod plot;
pub mod tables;
pub mod timeline;

use lyra_sim::SimReport;
use lyra_trace::{InferenceTrace, InferenceTraceConfig, JobTrace, TraceConfig};
use serde::{Deserialize, Serialize};

/// Experiment scale: trade fidelity for wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// CI-sized: 1 day, 16 + 16 servers.
    Small,
    /// Default: 4 days, 150 + 170 servers (shape-faithful, minutes).
    Medium,
    /// The paper's configuration: 15 days, 443 + 520 servers, ~50k jobs.
    Full,
}

impl Scale {
    /// Days of trace at this scale.
    pub fn days(self) -> u32 {
        match self {
            Scale::Small => 1,
            Scale::Medium => 4,
            Scale::Full => 15,
        }
    }

    /// `(training, inference)` server counts at this scale.
    pub fn servers(self) -> (u32, u32) {
        match self {
            Scale::Small => (16, 16),
            Scale::Medium => (150, 170),
            Scale::Full => (443, 520),
        }
    }

    /// The job-trace configuration at this scale.
    pub fn trace_config(self, seed: u64) -> TraceConfig {
        let (train, _) = self.servers();
        TraceConfig {
            days: self.days(),
            training_gpus: train * 8,
            seed,
            ..TraceConfig::default()
        }
    }

    /// The utilisation-trace configuration at this scale.
    pub fn inference_config(self, seed: u64) -> InferenceTraceConfig {
        let (_, inf) = self.servers();
        InferenceTraceConfig {
            days: self.days() + 30, // cover the post-trace drain period
            total_gpus: inf * 8,
            seed,
            ..InferenceTraceConfig::default()
        }
    }

    /// The cluster configuration at this scale.
    pub fn cluster_config(self) -> lyra_cluster::state::ClusterConfig {
        let (train, inf) = self.servers();
        lyra_cluster::state::ClusterConfig {
            training_servers: train,
            inference_servers: inf,
            gpus_per_server: 8,
            speed: lyra_core::gpu::SpeedFactors::default(),
        }
    }

    /// Generates the default job + utilisation traces for this scale.
    pub fn traces(self, seed: u64) -> (JobTrace, InferenceTrace) {
        (
            JobTrace::generate(self.trace_config(seed)),
            InferenceTrace::generate(self.inference_config(seed ^ 0x5A5A)),
        )
    }
}

/// Runs a batch of labelled scenario thunks on worker threads (the
/// scenarios of one table are independent) and returns results in input
/// order.
pub fn run_parallel<T, F>(tasks: Vec<(String, F)>) -> Vec<(String, T)>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .map(|(label, f)| (label, scope.spawn(f)))
            .collect();
        handles
            .into_iter()
            .map(|(label, h)| (label, h.join().expect("scenario thread panicked")))
            .collect()
    })
}

/// The paper's "Reduction" metric: `duration(other) / duration(lyra)`
/// (§7.1). A value of 1.53 means Lyra is 1.53× better.
pub fn reduction(other: f64, lyra: f64) -> f64 {
    if lyra > 0.0 {
        other / lyra
    } else {
        f64::INFINITY
    }
}

/// One labelled result row for report serialisation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id ("tab5", "fig10", …).
    pub experiment: String,
    /// Scale it ran at.
    pub scale: String,
    /// Free-form key/value series (figure data) rendered by the harness.
    pub series: Vec<(String, Vec<f64>)>,
    /// The underlying per-scheme reports, when applicable.
    pub reports: Vec<SimReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_matches_paper_convention() {
        assert!((reduction(3072.0, 2010.0) - 1.528).abs() < 1e-3);
        assert_eq!(reduction(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Small.days() < Scale::Medium.days());
        assert!(Scale::Medium.days() < Scale::Full.days());
        assert_eq!(Scale::Full.servers(), (443, 520));
        let cfg = Scale::Full.trace_config(1);
        assert_eq!(cfg.training_gpus, 3544);
    }

    #[test]
    fn trace_generation_round_trips_scale() {
        let (jobs, inf) = Scale::Small.traces(3);
        assert!(!jobs.jobs.is_empty());
        assert!(!inf.samples.is_empty());
        assert_eq!(jobs.config.days, 1);
    }
}
