//! Dependency-free SVG line charts for experiment series.
//!
//! `lyra-bench <exp> --json results/` archives every figure's series as
//! JSON; `lyra-bench plot results/<exp>.json` turns them into an SVG so
//! the paper's figures can be regenerated end to end with no external
//! plotting stack.

use crate::ExperimentResult;
use std::fmt::Write as _;

/// Chart geometry.
const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 400.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 48.0;

/// Line colours cycled across series.
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
];

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{:.0}k", v / 1000.0)
    } else if v.abs() >= 10.0 || v == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Renders labelled series as one SVG line chart.
///
/// Each series is a `(label, ys)` pair plotted against its index (the
/// archived JSON stores y-values only; x-axes are ordinal in every
/// figure we export). Series of unequal length are drawn over their own
/// index ranges.
///
/// # Examples
///
/// ```
/// use lyra_bench::plot::render_svg;
/// let svg = render_svg(
///     "demo",
///     &[("a".into(), vec![1.0, 2.0, 3.0]), ("b".into(), vec![3.0, 1.0])],
/// );
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("polyline"));
/// assert!(svg.contains("demo"));
/// ```
pub fn render_svg(title: &str, series: &[(String, Vec<f64>)]) -> String {
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let max_len = series.iter().map(|(_, ys)| ys.len()).max().unwrap_or(0);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, ys) in series {
        for &y in ys {
            if y.is_finite() {
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
        }
    }
    if !y_min.is_finite() || !y_max.is_finite() {
        y_min = 0.0;
        y_max = 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    // A little vertical padding.
    let pad = (y_max - y_min) * 0.05;
    let (y_lo, y_hi) = (y_min - pad, y_max + pad);

    let x_of = |i: usize| {
        if max_len <= 1 {
            MARGIN_L + plot_w / 2.0
        } else {
            MARGIN_L + plot_w * i as f64 / (max_len - 1) as f64
        }
    };
    let y_of = |v: f64| MARGIN_T + plot_h * (1.0 - (v - y_lo) / (y_hi - y_lo));

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="20" text-anchor="middle" font-size="14">{}</text>"#,
        WIDTH / 2.0,
        title
    );

    // Axes.
    let _ = write!(
        svg,
        r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="black"/>"#,
        MARGIN_T + plot_h
    );
    let _ = write!(
        svg,
        r#"<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        MARGIN_T + plot_h,
        MARGIN_L + plot_w,
        MARGIN_T + plot_h
    );
    // Y ticks.
    for k in 0..=4 {
        let v = y_lo + (y_hi - y_lo) * f64::from(k) / 4.0;
        let y = y_of(v);
        let _ = write!(
            svg,
            r#"<line x1="{}" y1="{y}" x2="{MARGIN_L}" y2="{y}" stroke="black"/>"#,
            MARGIN_L - 4.0
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="end">{}</text>"#,
            MARGIN_L - 8.0,
            y + 4.0,
            fmt_tick(v)
        );
        if k > 0 {
            let _ = write!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{y}" x2="{}" y2="{y}" stroke="#dddddd"/>"##,
                MARGIN_L + plot_w
            );
        }
    }
    // X ticks (at most 10).
    if max_len > 1 {
        let step = (max_len / 10).max(1);
        for i in (0..max_len).step_by(step) {
            let x = x_of(i);
            let _ = write!(
                svg,
                r#"<line x1="{x}" y1="{}" x2="{x}" y2="{}" stroke="black"/>"#,
                MARGIN_T + plot_h,
                MARGIN_T + plot_h + 4.0
            );
            let _ = write!(
                svg,
                r#"<text x="{x}" y="{}" text-anchor="middle">{i}</text>"#,
                MARGIN_T + plot_h + 18.0
            );
        }
    }

    // Series.
    for (si, (label, ys)) in series.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        let points: Vec<String> = ys
            .iter()
            .enumerate()
            .filter(|(_, y)| y.is_finite())
            .map(|(i, &y)| format!("{:.1},{:.1}", x_of(i), y_of(y)))
            .collect();
        if points.len() > 1 {
            let _ = write!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                points.join(" ")
            );
        }
        for p in &points {
            let (x, y) = p.split_once(',').expect("point format");
            let _ = write!(svg, r#"<circle cx="{x}" cy="{y}" r="3" fill="{color}"/>"#);
        }
        // Legend.
        let ly = MARGIN_T + 16.0 * si as f64;
        let _ = write!(
            svg,
            r#"<rect x="{}" y="{}" width="10" height="10" fill="{color}"/>"#,
            MARGIN_L + 8.0,
            ly
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}">{}</text>"#,
            MARGIN_L + 22.0,
            ly + 9.0,
            label
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Renders every series of an archived experiment into one SVG.
pub fn plot_experiment(result: &ExperimentResult) -> String {
    render_svg(
        &format!("{} ({})", result.experiment, result.scale),
        &result.series,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Vec<(String, Vec<f64>)> {
        vec![
            ("lyra".into(), vec![1.0, 1.5, 2.0, 2.5]),
            ("baseline".into(), vec![1.0, 1.0, 1.0, 1.0]),
        ]
    }

    #[test]
    fn svg_has_expected_structure() {
        let svg = render_svg("t", &demo());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.matches("<circle").count() >= 8);
        assert!(svg.contains("lyra") && svg.contains("baseline"));
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert!(render_svg("empty", &[]).contains("</svg>"));
        let flat = vec![("flat".into(), vec![5.0; 3])];
        assert!(render_svg("flat", &flat).contains("polyline"));
        let single = vec![("one".into(), vec![2.0])];
        assert!(render_svg("one", &single).contains("circle"));
        let nan = vec![("nan".into(), vec![f64::NAN, 1.0])];
        assert!(render_svg("nan", &nan).contains("</svg>"));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(12_000.0), "12k");
        assert_eq!(fmt_tick(42.0), "42");
        assert_eq!(fmt_tick(0.5), "0.50");
        assert_eq!(fmt_tick(0.0), "0");
    }
}
