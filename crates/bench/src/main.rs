//! The experiment harness CLI.
//!
//! ```text
//! cargo run -p lyra-bench --release -- tab5            # one experiment
//! cargo run -p lyra-bench --release -- all --small     # everything, CI size
//! cargo run -p lyra-bench --release -- fig10 --full    # paper scale
//! cargo run -p lyra-bench --release -- list
//! cargo run -p lyra-bench --release -- smoke           # observed end-to-end run
//! cargo run -p lyra-bench --release -- explain 17      # one job's decision chain
//! cargo run -p lyra-bench --release -- timeline        # sparkline telemetry dashboard
//! cargo run -p lyra-bench --release -- prom --out m.prom  # Prometheus exposition
//! ```
//!
//! Results print as tables/series on stdout; `--quiet` suppresses the
//! tables and `--json [dir]` replaces them with one machine-readable
//! JSON line per experiment (and, when a directory is given, one JSON
//! file per experiment). `plot <file.json>...` renders archived results
//! as SVG line charts next to the JSON. `explain <job-id> [--log
//! <file.jsonl>]` reconstructs the scheduler's causal chain for one job
//! from a recorded event log (or from a fresh small observed run).

use lyra_bench::{experiments, Scale};
use lyra_obs::OutputMode;
use lyra_sim::{run_scenario_observed, ObserverConfig, Scenario};
use std::io::Write as _;

/// The complete usage listing — every subcommand, including the
/// telemetry pair (`timeline`, `prom`). One source of truth for both
/// the help path and the bad-arguments path.
fn usage_text() -> String {
    format!(
        "usage: lyra-bench <id>... [--small|--medium|--full] [--quiet] [--json [dir]]\n\
         \x20      lyra-bench help | --help | list\n\
         \x20      lyra-bench plot <file.json>... | smoke [--log <file.jsonl>]\n\
         \x20      lyra-bench explain <job-id> [--log <file.jsonl>]\n\
         \x20      lyra-bench attribute <job-id>|--top <n> [--log <file.jsonl>]\n\
         \x20      lyra-bench export-trace [--log <file.jsonl>] [--out <file.json>]\n\
         \x20      lyra-bench events --filter job=<id>,kind=<kind>,cause=<cause> [--log <file.jsonl>]\n\
         \x20      lyra-bench why <job-id> [--log <file.jsonl>]\n\
         \x20      lyra-bench blame [--top <n>] [--log <file.jsonl>]\n\
         \x20      lyra-bench export-provenance [--log <file.jsonl>] [--out <file.json>]\n\
         \x20      lyra-bench timeline [--log <file.jsonl>] [--width <cols>]\n\
         \x20      lyra-bench prom [--out <file.prom>]\n\
         \x20      lyra-bench perf [--smoke]\n\
         \x20      lyra-bench golden [--bless|--mutate]\n\
         \x20      lyra-bench ablate [--smoke] [--policy <name>] [--seed <s>] [--out <file>]\n\
         \x20      lyra-bench checkpoint --at <seconds> --out <file.ckpt> [--log <file.jsonl>]\n\
         \x20      lyra-bench resume --ckpt <file.ckpt>\n\
         \x20      lyra-bench crash-storm [--kills <n>] [--seed <s>] [--dir <path>]\n\
         ids: {}  (or `all`)\n\
         event kinds: {}\n\
         delay causes: {}",
        experiments::ALL.join(" "),
        lyra_obs::KIND_NAMES.join(" "),
        lyra_obs::DelayCause::ALL
            .iter()
            .map(|c| c.label())
            .collect::<Vec<_>>()
            .join(" ")
    )
}

/// Bad arguments: usage on stderr, exit 2.
fn usage() -> ! {
    eprintln!("{}", usage_text());
    std::process::exit(2);
}

/// `help` / `--help`: usage on stdout, exit 0 — asking for help is not
/// an error.
fn help() -> ! {
    println!("{}", usage_text());
    std::process::exit(0);
}

/// Runs one small observed Basic scenario and returns its report; used
/// by `smoke` and by `explain` when no `--log` file is given.
fn observed_small_run(sink: Option<&str>) -> lyra_sim::SimReport {
    // Seed 5 and the Small cluster match tab5's Basic row, which
    // exercises loaning, reclaiming and preemption even at Small scale.
    let (jobs, inference) = Scale::Small.traces(5);
    let mut scenario = Scenario::basic();
    scenario.cluster = Scale::Small.cluster_config();
    let observer = ObserverConfig {
        sink_path: sink.map(std::path::PathBuf::from),
        ..ObserverConfig::default()
    };
    run_scenario_observed(&scenario, &jobs, &inference, observer)
        .unwrap_or_else(|e| panic!("observed run failed: {e}"))
}

/// `smoke [--log <file>]`: one observed end-to-end run with every
/// observability pillar checked — used by ci.sh as the bench smoke
/// test. Exits non-zero if the run produced no events, no metric
/// snapshots, no span profile or no delay attribution, or if the
/// exported Chrome trace fails the `trace_event` schema check. With
/// `--log`, also writes the JSONL event log to `file` (feed it to
/// `explain`/`attribute`/`export-trace`/`events --log <file>`).
fn smoke(log_path: Option<&str>) -> ! {
    let report = observed_small_run(log_path);
    println!(
        "smoke: {} jobs completed, {} events, {} metric snapshots, {} profiled phases",
        report.completed,
        report.events.len(),
        report.metrics.len(),
        report.profile.0.len()
    );
    print!("{}", report.profile.render());
    print!("{}", report.attribution.render_table());
    let events = lyra_obs::parse_log(&report.events.join("\n"))
        .unwrap_or_else(|e| panic!("smoke: event log does not parse: {e}"));
    let trace = lyra_obs::export_chrome_trace(&events);
    let stats = lyra_obs::validate_chrome_trace(&trace)
        .unwrap_or_else(|e| panic!("smoke: exported Chrome trace is malformed: {e}"));
    println!(
        "smoke: chrome trace ok ({} events, {} tracks, {} span pairs)",
        stats.events, stats.tracks, stats.span_pairs
    );
    let ok = report.completed > 0
        && !report.events.is_empty()
        && !report.metrics.is_empty()
        && !report.profile.0.is_empty()
        && report.attribution.jobs > 0
        && stats.span_pairs > 0;
    if !ok {
        eprintln!("smoke: missing observability output");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// The JSONL event log named by `--log`, or a fresh small observed run.
/// A bad path is a clean user error, not a panic.
fn load_log(log_path: Option<&str>) -> String {
    match log_path {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read event log {path}: {e}");
            std::process::exit(1);
        }),
        None => observed_small_run(None).events.join("\n"),
    }
}

/// Parses a JSONL event log, exiting cleanly on malformed input.
fn parse_log_or_exit(jsonl: &str) -> Vec<lyra_obs::TimedEvent> {
    lyra_obs::parse_log(jsonl).unwrap_or_else(|e| {
        eprintln!("event log does not parse: {e}");
        std::process::exit(1);
    })
}

/// `explain <job-id>`: narrate the causal chain for one job from a
/// recorded event log, or from a fresh small observed run.
fn explain(job: u64, log_path: Option<&str>) -> ! {
    let jsonl = load_log(log_path);
    let events = parse_log_or_exit(&jsonl);
    print!("{}", lyra_obs::explain_job(&events, job));
    std::process::exit(0);
}

/// `attribute <job-id>` / `attribute --top <n>`: the per-job JCT
/// decomposition (ranked causes + timeline) or the cluster-wide ranking
/// by time lost, derived by replaying the event log.
fn attribute(job: Option<u64>, top: Option<usize>, log_path: Option<&str>) -> ! {
    let jsonl = load_log(log_path);
    let events = parse_log_or_exit(&jsonl);
    let attrs = lyra_obs::attribute_log(&events);
    match (job, top) {
        (Some(id), _) => {
            let Some(attr) = attrs.iter().find(|a| a.job == id) else {
                eprintln!("attribute: job {id} does not appear in the event log");
                std::process::exit(1);
            };
            print!("{}", lyra_obs::render_job(attr, 40));
        }
        (None, Some(n)) => {
            print!("{}", lyra_obs::render_top(&attrs, n));
            print!("{}", lyra_obs::summarize(&attrs).render_table());
        }
        (None, None) => usage(),
    }
    std::process::exit(0);
}

/// `export-trace`: write the event log as Chrome/Perfetto `trace_event`
/// JSON (open in `chrome://tracing` or <https://ui.perfetto.dev>). The
/// exported file is schema-validated before the command reports success.
fn export_trace(log_path: Option<&str>, out: &str) -> ! {
    let jsonl = load_log(log_path);
    let events = parse_log_or_exit(&jsonl);
    let trace = lyra_obs::export_chrome_trace(&events);
    let stats = lyra_obs::validate_chrome_trace(&trace)
        .unwrap_or_else(|e| panic!("exported trace failed validation: {e}"));
    std::fs::write(out, &trace).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!(
        "wrote {out}: {} events, {} tracks, {} span pairs",
        stats.events, stats.tracks, stats.span_pairs
    );
    std::process::exit(0);
}

/// `events --filter job=<id>,kind=<kind>,cause=<cause>`: slice a JSONL
/// event log, printing the raw lines that match every criterion (a job
/// filter matches any event touching that job, audit records included;
/// a cause filter matches events naming that [`lyra_obs::DelayCause`]).
fn events_cmd(filter: &str, log_path: Option<&str>) -> ! {
    let mut job: Option<u64> = None;
    let mut kind: Option<String> = None;
    let mut cause: Option<lyra_obs::DelayCause> = None;
    for part in filter.split(',').filter(|p| !p.is_empty()) {
        match part.split_once('=') {
            Some(("job", v)) => {
                job = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("events: bad job id in filter: {v}");
                    std::process::exit(2);
                }));
            }
            Some(("kind", v)) => {
                // Validate against the authoritative event-kind list so a
                // typo fails loudly instead of silently matching nothing.
                if !lyra_obs::KIND_NAMES.contains(&v) {
                    eprintln!(
                        "events: unknown event kind {v:?} (known kinds: {})",
                        lyra_obs::KIND_NAMES.join(", ")
                    );
                    std::process::exit(2);
                }
                kind = Some(v.to_string());
            }
            Some(("cause", v)) => {
                // Same deal for the delay-cause taxonomy.
                cause = Some(lyra_obs::DelayCause::from_label(v).unwrap_or_else(|| {
                    eprintln!(
                        "events: unknown delay cause {v:?} (known causes: {})",
                        lyra_obs::DelayCause::ALL
                            .iter()
                            .map(|c| c.label())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(2);
                }));
            }
            _ => {
                eprintln!(
                    "events: bad filter term {part:?} (use job=<id>,kind=<kind>,cause=<cause>)"
                );
                std::process::exit(2);
            }
        }
    }
    if job.is_none() && kind.is_none() && cause.is_none() {
        eprintln!("events: empty filter (use job=<id>,kind=<kind>,cause=<cause>)");
        std::process::exit(2);
    }
    let jsonl = load_log(log_path);
    let lines: Vec<&str> = jsonl.lines().filter(|l| !l.trim().is_empty()).collect();
    let events = parse_log_or_exit(&jsonl);
    // A torn final line (crash-cut log) parses to one fewer event than
    // there are lines; the zip below then skips it.
    if lines.len() != events.len() {
        eprintln!(
            "events: warning: {} lines but {} parsed events (torn final line?)",
            lines.len(),
            events.len()
        );
    }
    let mut matched = 0usize;
    for (line, ev) in lines.iter().zip(&events) {
        let job_ok = job.is_none_or(|id| ev.event.touches_job(id));
        let kind_ok = kind.as_deref().is_none_or(|k| ev.event.kind_name() == k);
        let cause_ok = cause.is_none_or(|c| ev.event.cause() == Some(c));
        if job_ok && kind_ok && cause_ok {
            println!("{line}");
            matched += 1;
        }
    }
    eprintln!("events: {matched} of {} lines matched", lines.len());
    std::process::exit(0);
}

/// `why <job-id>`: render the decision provenance for one job — each
/// delay interval annotated with the causal chain of scheduler
/// decisions (victim ranking, loan demand, faults, …) that produced
/// it, walked back through the provenance graph.
fn why_cmd(job: u64, log_path: Option<&str>) -> ! {
    let jsonl = load_log(log_path);
    let events = parse_log_or_exit(&jsonl);
    match lyra_obs::why_from_log(&events, job) {
        Ok(text) => {
            print!("{text}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("why: {e}");
            std::process::exit(1);
        }
    }
}

/// `blame [--top <n>]`: the reclaim decisions ranked by the victim
/// delay they caused, with the loan-demand decision each ranking
/// answered. Same seed, same bytes.
fn blame_cmd(top: usize, log_path: Option<&str>) -> ! {
    let jsonl = load_log(log_path);
    let events = parse_log_or_exit(&jsonl);
    print!("{}", lyra_obs::blame_from_log(&events, top));
    std::process::exit(0);
}

/// `export-provenance`: the Chrome/Perfetto trace with provenance flow
/// arrows — each reclaim preemption linked back to the victim-ranking
/// decision that chose it, each loan-enabled scale-out to its grant.
/// Schema-validated before the command reports success.
fn export_provenance(log_path: Option<&str>, out: &str) -> ! {
    let jsonl = load_log(log_path);
    let events = parse_log_or_exit(&jsonl);
    let trace = lyra_obs::export_provenance_trace(&events);
    let stats = lyra_obs::validate_chrome_trace(&trace)
        .unwrap_or_else(|e| panic!("provenance trace failed validation: {e}"));
    std::fs::write(out, &trace).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!(
        "wrote {out}: {} events, {} tracks, {} span pairs, {} flow events",
        stats.events, stats.tracks, stats.span_pairs, stats.flow_events
    );
    std::process::exit(0);
}

/// `timeline [--log <file.jsonl>] [--width <cols>]`: the sparkline
/// dashboard. Without `--log` it runs one small observed scenario and
/// charts the live telemetry; with `--log` it replays a recorded event
/// log, deriving the (smaller) series set the log supports. Alert
/// transitions are listed under the chart in both modes.
fn timeline_cmd(log_path: Option<&str>, width: usize) -> ! {
    let (telemetry, alerts) = match log_path {
        Some(_) => {
            let jsonl = load_log(log_path);
            let events = parse_log_or_exit(&jsonl);
            (
                lyra_bench::timeline::telemetry_from_log(&events),
                lyra_bench::timeline::alerts_from_log(&events),
            )
        }
        None => {
            let report = observed_small_run(None);
            let events = parse_log_or_exit(&report.events.join("\n"));
            (
                report.telemetry,
                lyra_bench::timeline::alerts_from_log(&events),
            )
        }
    };
    print!(
        "{}",
        lyra_bench::timeline::render_dashboard(&telemetry, &alerts, width)
    );
    std::process::exit(0);
}

/// `prom [--out <file.prom>]`: run one small observed scenario and
/// write its telemetry + metrics registry in Prometheus text
/// exposition format 0.0.4 (stdout when `--out` is omitted). Same
/// seed, same bytes.
fn prom_cmd(out: Option<&str>) -> ! {
    let report = observed_small_run(None);
    let text = lyra_obs::render_prometheus(&report.telemetry, report.metrics.last());
    match out {
        Some(path) => {
            std::fs::write(path, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("wrote {path} ({} lines)", text.lines().count());
        }
        None => print!("{text}"),
    }
    std::process::exit(0);
}

/// True if `arg` is a flag, subcommand or experiment id — i.e. not a
/// directory operand for `--json [dir]`.
fn is_operand_like(arg: &str) -> bool {
    arg.starts_with("--")
        || matches!(
            arg,
            "all" | "list"
                | "help"
                | "plot"
                | "smoke"
                | "explain"
                | "attribute"
                | "export-trace"
                | "export-provenance"
                | "events"
                | "why"
                | "blame"
                | "timeline"
                | "prom"
                | "perf"
                | "golden"
                | "ablate"
                | "checkpoint"
                | "resume"
                | "crash-storm"
        )
        || experiments::ALL.contains(&arg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = Scale::Medium;
    let mut json_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--small" => scale = Scale::Small,
            "--medium" => scale = Scale::Medium,
            "--full" => scale = Scale::Full,
            "--quiet" => lyra_obs::output::set_mode(OutputMode::Quiet),
            "--json" => {
                lyra_obs::output::set_mode(OutputMode::Json);
                // Back-compat: `--json results/` also archives one JSON
                // file per experiment into the directory.
                if let Some(next) = args.get(i + 1) {
                    if !is_operand_like(next) {
                        json_dir = Some(next.clone());
                        i += 1;
                    }
                }
            }
            "help" | "--help" => help(),
            "list" => {
                for id in experiments::ALL {
                    println!("{id}");
                }
                return;
            }
            "timeline" => {
                let mut log_path: Option<String> = None;
                let mut width = lyra_bench::timeline::DEFAULT_WIDTH;
                let mut k = i + 1;
                while k < args.len() {
                    match args[k].as_str() {
                        "--log" => {
                            log_path = Some(args.get(k + 1).cloned().unwrap_or_else(|| usage()));
                            k += 2;
                        }
                        "--width" => {
                            let raw = args.get(k + 1).cloned().unwrap_or_else(|| usage());
                            width = raw.parse().unwrap_or_else(|_| {
                                eprintln!("timeline: --width expects columns, got {raw:?}");
                                std::process::exit(2);
                            });
                            k += 2;
                        }
                        other => {
                            eprintln!("timeline: unknown argument {other:?}");
                            usage();
                        }
                    }
                }
                timeline_cmd(log_path.as_deref(), width);
            }
            "prom" => {
                let mut out: Option<String> = None;
                let mut k = i + 1;
                while k < args.len() {
                    match args[k].as_str() {
                        "--out" => {
                            out = Some(args.get(k + 1).cloned().unwrap_or_else(|| usage()));
                            k += 2;
                        }
                        other => {
                            eprintln!("prom: unknown argument {other:?}");
                            usage();
                        }
                    }
                }
                prom_cmd(out.as_deref());
            }
            "smoke" => {
                let log_path = match args.get(i + 1).map(String::as_str) {
                    Some("--log") => Some(args.get(i + 2).cloned().unwrap_or_else(|| usage())),
                    _ => None,
                };
                smoke(log_path.as_deref());
            }
            "perf" => {
                let smoke = args.get(i + 1).map(String::as_str) == Some("--smoke");
                std::process::exit(lyra_bench::perf::run(smoke));
            }
            "golden" => {
                let (bless, mutate) = match args.get(i + 1).map(String::as_str) {
                    Some("--bless") => (true, false),
                    Some("--mutate") => (false, true),
                    None => (false, false),
                    Some(_) => usage(),
                };
                std::process::exit(lyra_bench::golden::run(bless, mutate));
            }
            "ablate" => {
                let mut smoke = false;
                let mut seed: u64 = 0;
                let mut policy: Option<String> = None;
                let mut out: Option<String> = None;
                let mut k = i + 1;
                while k < args.len() {
                    match args[k].as_str() {
                        "--smoke" => {
                            smoke = true;
                            k += 1;
                        }
                        "--policy" => {
                            policy = Some(args.get(k + 1).cloned().unwrap_or_else(|| usage()));
                            k += 2;
                        }
                        "--seed" => {
                            let raw = args.get(k + 1).cloned().unwrap_or_else(|| usage());
                            seed = raw.parse().unwrap_or_else(|_| {
                                eprintln!("ablate: --seed expects an integer, got {raw:?}");
                                std::process::exit(2);
                            });
                            k += 2;
                        }
                        "--out" => {
                            out = Some(args.get(k + 1).cloned().unwrap_or_else(|| usage()));
                            k += 2;
                        }
                        other => {
                            eprintln!("ablate: unknown argument {other:?}");
                            usage();
                        }
                    }
                }
                std::process::exit(lyra_bench::ablate::run(
                    smoke,
                    seed,
                    policy.as_deref(),
                    out.as_deref(),
                ));
            }
            "checkpoint" => {
                let mut at: Option<f64> = None;
                let mut out: Option<String> = None;
                let mut log: Option<String> = None;
                let mut k = i + 1;
                while k < args.len() {
                    match args[k].as_str() {
                        "--at" => {
                            let raw = args.get(k + 1).cloned().unwrap_or_else(|| usage());
                            at = Some(raw.parse().unwrap_or_else(|_| {
                                eprintln!("checkpoint: --at expects seconds, got {raw:?}");
                                std::process::exit(2);
                            }));
                            k += 2;
                        }
                        "--out" => {
                            out = Some(args.get(k + 1).cloned().unwrap_or_else(|| usage()));
                            k += 2;
                        }
                        "--log" => {
                            log = Some(args.get(k + 1).cloned().unwrap_or_else(|| usage()));
                            k += 2;
                        }
                        other => {
                            eprintln!("checkpoint: unknown argument {other:?}");
                            usage();
                        }
                    }
                }
                let (Some(at), Some(out)) = (at, out) else {
                    eprintln!("checkpoint: --at and --out are required");
                    usage();
                };
                std::process::exit(lyra_bench::crash::checkpoint_cmd(
                    at,
                    std::path::Path::new(&out),
                    log.as_deref().map(std::path::Path::new),
                ));
            }
            "resume" => {
                let mut ckpt: Option<String> = None;
                let mut k = i + 1;
                while k < args.len() {
                    match args[k].as_str() {
                        "--ckpt" => {
                            ckpt = Some(args.get(k + 1).cloned().unwrap_or_else(|| usage()));
                            k += 2;
                        }
                        other => {
                            eprintln!("resume: unknown argument {other:?}");
                            usage();
                        }
                    }
                }
                let Some(ckpt) = ckpt else {
                    eprintln!("resume: --ckpt is required");
                    usage();
                };
                std::process::exit(lyra_bench::crash::resume_cmd(std::path::Path::new(&ckpt)));
            }
            "crash-storm" => {
                let mut kills: usize = 10;
                let mut seed: u64 = 1;
                let mut dir = std::env::temp_dir().join("lyra-crash-storm");
                let mut k = i + 1;
                while k < args.len() {
                    let parse_next = |what: &str, raw: Option<&String>| -> String {
                        raw.cloned().unwrap_or_else(|| {
                            eprintln!("crash-storm: {what} expects a value");
                            std::process::exit(2);
                        })
                    };
                    match args[k].as_str() {
                        "--kills" => {
                            let raw = parse_next("--kills", args.get(k + 1));
                            kills = raw.parse().unwrap_or_else(|_| {
                                eprintln!("crash-storm: --kills expects a count, got {raw:?}");
                                std::process::exit(2);
                            });
                            k += 2;
                        }
                        "--seed" => {
                            let raw = parse_next("--seed", args.get(k + 1));
                            seed = raw.parse().unwrap_or_else(|_| {
                                eprintln!("crash-storm: --seed expects an integer, got {raw:?}");
                                std::process::exit(2);
                            });
                            k += 2;
                        }
                        "--dir" => {
                            dir = parse_next("--dir", args.get(k + 1)).into();
                            k += 2;
                        }
                        other => {
                            eprintln!("crash-storm: unknown argument {other:?}");
                            usage();
                        }
                    }
                }
                std::process::exit(lyra_bench::crash::storm_cmd(kills, seed, &dir));
            }
            "explain" => {
                let job: u64 = args
                    .get(i + 1)
                    .and_then(|a| a.parse().ok())
                    .unwrap_or_else(|| usage());
                let log_path = match args.get(i + 2).map(String::as_str) {
                    Some("--log") => Some(args.get(i + 3).cloned().unwrap_or_else(|| usage())),
                    _ => None,
                };
                explain(job, log_path.as_deref());
            }
            "attribute" => {
                let (job, top, next) = match args.get(i + 1).map(String::as_str) {
                    Some("--top") => {
                        let n: usize = args
                            .get(i + 2)
                            .and_then(|a| a.parse().ok())
                            .unwrap_or_else(|| usage());
                        (None, Some(n), i + 3)
                    }
                    Some(id) => {
                        let id: u64 = id.parse().ok().unwrap_or_else(|| usage());
                        (Some(id), None, i + 2)
                    }
                    None => usage(),
                };
                let log_path = match args.get(next).map(String::as_str) {
                    Some("--log") => Some(args.get(next + 1).cloned().unwrap_or_else(|| usage())),
                    _ => None,
                };
                attribute(job, top, log_path.as_deref());
            }
            "why" => {
                let job: u64 = args
                    .get(i + 1)
                    .and_then(|a| a.parse().ok())
                    .unwrap_or_else(|| usage());
                let log_path = match args.get(i + 2).map(String::as_str) {
                    Some("--log") => Some(args.get(i + 3).cloned().unwrap_or_else(|| usage())),
                    _ => None,
                };
                why_cmd(job, log_path.as_deref());
            }
            "blame" => {
                let mut top: usize = 10;
                let mut log_path: Option<String> = None;
                let mut k = i + 1;
                while k < args.len() {
                    match args[k].as_str() {
                        "--top" => {
                            let raw = args.get(k + 1).cloned().unwrap_or_else(|| usage());
                            top = raw.parse().unwrap_or_else(|_| {
                                eprintln!("blame: --top expects a count, got {raw:?}");
                                std::process::exit(2);
                            });
                            k += 2;
                        }
                        "--log" => {
                            log_path = Some(args.get(k + 1).cloned().unwrap_or_else(|| usage()));
                            k += 2;
                        }
                        other => {
                            eprintln!("blame: unknown argument {other:?}");
                            usage();
                        }
                    }
                }
                blame_cmd(top, log_path.as_deref());
            }
            "export-provenance" => {
                let mut log_path: Option<String> = None;
                let mut out = "provenance.json".to_string();
                let mut k = i + 1;
                while k < args.len() {
                    match args[k].as_str() {
                        "--log" => {
                            log_path = Some(args.get(k + 1).cloned().unwrap_or_else(|| usage()));
                            k += 2;
                        }
                        "--out" => {
                            out = args.get(k + 1).cloned().unwrap_or_else(|| usage());
                            k += 2;
                        }
                        _ => usage(),
                    }
                }
                export_provenance(log_path.as_deref(), &out);
            }
            "export-trace" => {
                let mut log_path: Option<String> = None;
                let mut out = "trace.json".to_string();
                let mut k = i + 1;
                while k < args.len() {
                    match args[k].as_str() {
                        "--log" => {
                            log_path = Some(args.get(k + 1).cloned().unwrap_or_else(|| usage()));
                            k += 2;
                        }
                        "--out" => {
                            out = args.get(k + 1).cloned().unwrap_or_else(|| usage());
                            k += 2;
                        }
                        _ => usage(),
                    }
                }
                export_trace(log_path.as_deref(), &out);
            }
            "events" => {
                let mut log_path: Option<String> = None;
                let mut filter: Option<String> = None;
                let mut k = i + 1;
                while k < args.len() {
                    match args[k].as_str() {
                        "--log" => {
                            log_path = Some(args.get(k + 1).cloned().unwrap_or_else(|| usage()));
                            k += 2;
                        }
                        "--filter" => {
                            filter = Some(args.get(k + 1).cloned().unwrap_or_else(|| usage()));
                            k += 2;
                        }
                        _ => usage(),
                    }
                }
                let filter = filter.unwrap_or_else(|| usage());
                events_cmd(&filter, log_path.as_deref());
            }
            "plot" => {
                for path in &args[i + 1..] {
                    let json = std::fs::read_to_string(path)
                        .unwrap_or_else(|e| panic!("read {path}: {e}"));
                    let result: lyra_bench::ExperimentResult = serde_json::from_str(&json)
                        .unwrap_or_else(|e| panic!("parse {path}: {e}"));
                    let svg = lyra_bench::plot::plot_experiment(&result);
                    let out = path.replace(".json", ".svg");
                    std::fs::write(&out, svg).expect("write svg");
                    println!("wrote {out}");
                }
                return;
            }
            "all" => ids.extend(experiments::ALL.iter().map(|s| s.to_string())),
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage();
    }
    for id in &ids {
        lyra_obs::emitln!("==== {id} ({scale:?}) ====");
        let start = std::time::Instant::now();
        let Some(result) = experiments::run(id, scale) else {
            eprintln!("unknown experiment: {id}");
            std::process::exit(2);
        };
        lyra_obs::emitln!("[{id} done in {:.1}s]\n", start.elapsed().as_secs_f64());
        let payload = serde_json::to_string(&result).expect("serialise result");
        lyra_obs::output::emit_json(&payload);
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir).expect("create output dir");
            let path = format!("{dir}/{id}.json");
            let mut f = std::fs::File::create(&path).expect("create json file");
            let pretty = serde_json::to_string_pretty(&result).expect("serialise result");
            f.write_all(pretty.as_bytes()).expect("write json");
            lyra_obs::emitln!("wrote {path}");
        }
    }
}
