//! The experiment harness CLI.
//!
//! ```text
//! cargo run -p lyra-bench --release -- tab5            # one experiment
//! cargo run -p lyra-bench --release -- all --small     # everything, CI size
//! cargo run -p lyra-bench --release -- fig10 --full    # paper scale
//! cargo run -p lyra-bench --release -- list
//! cargo run -p lyra-bench --release -- smoke           # observed end-to-end run
//! cargo run -p lyra-bench --release -- explain 17      # one job's decision chain
//! ```
//!
//! Results print as tables/series on stdout; `--quiet` suppresses the
//! tables and `--json [dir]` replaces them with one machine-readable
//! JSON line per experiment (and, when a directory is given, one JSON
//! file per experiment). `plot <file.json>...` renders archived results
//! as SVG line charts next to the JSON. `explain <job-id> [--log
//! <file.jsonl>]` reconstructs the scheduler's causal chain for one job
//! from a recorded event log (or from a fresh small observed run).

use lyra_bench::{experiments, Scale};
use lyra_obs::OutputMode;
use lyra_sim::{run_scenario_observed, ObserverConfig, Scenario};
use std::io::Write as _;

fn usage() -> ! {
    eprintln!(
        "usage: lyra-bench <id>... [--small|--medium|--full] [--quiet] [--json [dir]]\n\
         \x20      lyra-bench list | plot <file.json>... | smoke [--log <file.jsonl>]\n\
         \x20      lyra-bench explain <job-id> [--log <file.jsonl>]\n\
         \x20      lyra-bench perf [--smoke]\n\
         \x20      lyra-bench golden [--bless|--mutate]\n\
         ids: {}  (or `all`)",
        experiments::ALL.join(" ")
    );
    std::process::exit(2);
}

/// Runs one small observed Basic scenario and returns its report; used
/// by `smoke` and by `explain` when no `--log` file is given.
fn observed_small_run(sink: Option<&str>) -> lyra_sim::SimReport {
    // Seed 5 and the Small cluster match tab5's Basic row, which
    // exercises loaning, reclaiming and preemption even at Small scale.
    let (jobs, inference) = Scale::Small.traces(5);
    let mut scenario = Scenario::basic();
    scenario.cluster = Scale::Small.cluster_config();
    let observer = ObserverConfig {
        sink_path: sink.map(std::path::PathBuf::from),
        ..ObserverConfig::default()
    };
    run_scenario_observed(&scenario, &jobs, &inference, observer)
        .unwrap_or_else(|e| panic!("observed run failed: {e}"))
}

/// `smoke [--log <file>]`: one observed end-to-end run with every
/// observability pillar checked — used by ci.sh as the bench smoke
/// test. Exits non-zero if the run produced no events, no metric
/// snapshots or no span profile. With `--log`, also writes the JSONL
/// event log to `file` (feed it to `explain <job-id> --log <file>`).
fn smoke(log_path: Option<&str>) -> ! {
    let report = observed_small_run(log_path);
    println!(
        "smoke: {} jobs completed, {} events, {} metric snapshots, {} profiled phases",
        report.completed,
        report.events.len(),
        report.metrics.len(),
        report.profile.0.len()
    );
    print!("{}", report.profile.render());
    let ok = report.completed > 0
        && !report.events.is_empty()
        && !report.metrics.is_empty()
        && !report.profile.0.is_empty();
    if !ok {
        eprintln!("smoke: missing observability output");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `explain <job-id>`: narrate the causal chain for one job from a
/// recorded event log, or from a fresh small observed run.
fn explain(job: u64, log_path: Option<&str>) -> ! {
    let jsonl = match log_path {
        Some(path) => {
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"))
        }
        None => observed_small_run(None).events.join("\n"),
    };
    let events = lyra_obs::parse_log(&jsonl).unwrap_or_else(|e| panic!("parse event log: {e}"));
    print!("{}", lyra_obs::explain_job(&events, job));
    std::process::exit(0);
}

/// True if `arg` is a flag, subcommand or experiment id — i.e. not a
/// directory operand for `--json [dir]`.
fn is_operand_like(arg: &str) -> bool {
    arg.starts_with("--")
        || matches!(arg, "all" | "list" | "plot" | "smoke" | "explain" | "perf" | "golden")
        || experiments::ALL.contains(&arg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = Scale::Medium;
    let mut json_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--small" => scale = Scale::Small,
            "--medium" => scale = Scale::Medium,
            "--full" => scale = Scale::Full,
            "--quiet" => lyra_obs::output::set_mode(OutputMode::Quiet),
            "--json" => {
                lyra_obs::output::set_mode(OutputMode::Json);
                // Back-compat: `--json results/` also archives one JSON
                // file per experiment into the directory.
                if let Some(next) = args.get(i + 1) {
                    if !is_operand_like(next) {
                        json_dir = Some(next.clone());
                        i += 1;
                    }
                }
            }
            "list" => {
                for id in experiments::ALL {
                    println!("{id}");
                }
                return;
            }
            "smoke" => {
                let log_path = match args.get(i + 1).map(String::as_str) {
                    Some("--log") => Some(args.get(i + 2).cloned().unwrap_or_else(|| usage())),
                    _ => None,
                };
                smoke(log_path.as_deref());
            }
            "perf" => {
                let smoke = args.get(i + 1).map(String::as_str) == Some("--smoke");
                std::process::exit(lyra_bench::perf::run(smoke));
            }
            "golden" => {
                let (bless, mutate) = match args.get(i + 1).map(String::as_str) {
                    Some("--bless") => (true, false),
                    Some("--mutate") => (false, true),
                    None => (false, false),
                    Some(_) => usage(),
                };
                std::process::exit(lyra_bench::golden::run(bless, mutate));
            }
            "explain" => {
                let job: u64 = args
                    .get(i + 1)
                    .and_then(|a| a.parse().ok())
                    .unwrap_or_else(|| usage());
                let log_path = match args.get(i + 2).map(String::as_str) {
                    Some("--log") => Some(args.get(i + 3).cloned().unwrap_or_else(|| usage())),
                    _ => None,
                };
                explain(job, log_path.as_deref());
            }
            "plot" => {
                for path in &args[i + 1..] {
                    let json = std::fs::read_to_string(path)
                        .unwrap_or_else(|e| panic!("read {path}: {e}"));
                    let result: lyra_bench::ExperimentResult = serde_json::from_str(&json)
                        .unwrap_or_else(|e| panic!("parse {path}: {e}"));
                    let svg = lyra_bench::plot::plot_experiment(&result);
                    let out = path.replace(".json", ".svg");
                    std::fs::write(&out, svg).expect("write svg");
                    println!("wrote {out}");
                }
                return;
            }
            "all" => ids.extend(experiments::ALL.iter().map(|s| s.to_string())),
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage();
    }
    for id in &ids {
        lyra_obs::emitln!("==== {id} ({scale:?}) ====");
        let start = std::time::Instant::now();
        let Some(result) = experiments::run(id, scale) else {
            eprintln!("unknown experiment: {id}");
            std::process::exit(2);
        };
        lyra_obs::emitln!("[{id} done in {:.1}s]\n", start.elapsed().as_secs_f64());
        let payload = serde_json::to_string(&result).expect("serialise result");
        lyra_obs::output::emit_json(&payload);
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir).expect("create output dir");
            let path = format!("{dir}/{id}.json");
            let mut f = std::fs::File::create(&path).expect("create json file");
            let pretty = serde_json::to_string_pretty(&result).expect("serialise result");
            f.write_all(pretty.as_bytes()).expect("write json");
            lyra_obs::emitln!("wrote {path}");
        }
    }
}
