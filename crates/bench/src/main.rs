//! The experiment harness CLI.
//!
//! ```text
//! cargo run -p lyra-bench --release -- tab5            # one experiment
//! cargo run -p lyra-bench --release -- all --small     # everything, CI size
//! cargo run -p lyra-bench --release -- fig10 --full    # paper scale
//! cargo run -p lyra-bench --release -- list
//! ```
//!
//! Results print as tables/series on stdout; `--json <dir>` additionally
//! writes one JSON file per experiment. `plot <file.json>...` renders
//! archived results as SVG line charts next to the JSON.

use lyra_bench::{experiments, Scale};
use std::io::Write as _;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <id>... [--small|--medium|--full] [--json <dir>]\n\
         ids: {}  (or `all`, `list`)",
        experiments::ALL.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = Scale::Medium;
    let mut json_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--small" => scale = Scale::Small,
            "--medium" => scale = Scale::Medium,
            "--full" => scale = Scale::Full,
            "--json" => {
                i += 1;
                json_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "list" => {
                for id in experiments::ALL {
                    println!("{id}");
                }
                return;
            }
            "plot" => {
                for path in &args[i + 1..] {
                    let json = std::fs::read_to_string(path)
                        .unwrap_or_else(|e| panic!("read {path}: {e}"));
                    let result: lyra_bench::ExperimentResult =
                        serde_json::from_str(&json)
                            .unwrap_or_else(|e| panic!("parse {path}: {e}"));
                    let svg = lyra_bench::plot::plot_experiment(&result);
                    let out = path.replace(".json", ".svg");
                    std::fs::write(&out, svg).expect("write svg");
                    println!("wrote {out}");
                }
                return;
            }
            "all" => ids.extend(experiments::ALL.iter().map(|s| s.to_string())),
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage();
    }
    for id in &ids {
        println!("==== {id} ({scale:?}) ====");
        let start = std::time::Instant::now();
        let Some(result) = experiments::run(id, scale) else {
            eprintln!("unknown experiment: {id}");
            std::process::exit(2);
        };
        println!("[{id} done in {:.1}s]\n", start.elapsed().as_secs_f64());
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir).expect("create output dir");
            let path = format!("{dir}/{id}.json");
            let mut f = std::fs::File::create(&path).expect("create json file");
            let payload = serde_json::to_string_pretty(&result).expect("serialise result");
            f.write_all(payload.as_bytes()).expect("write json");
            println!("wrote {path}");
        }
    }
}
