//! `lyra-bench timeline`: a terminal dashboard of the scheduler's
//! telemetry series as Unicode sparklines.
//!
//! Renders from a live observed run's [`Telemetry`], or — with `--log`
//! — from a recorded JSONL event log by replaying `SchedulerEpoch`,
//! `LoanGrant`, `ReclaimGrant`, `JobPreempt` and `ReclaimCarryover`
//! events into a derived telemetry (a strict subset of the live
//! series: the log carries no GPU-utilisation gauges). Alert
//! fire/resolve transitions are listed under the chart either way.
//! Everything here is a pure function of its inputs, so the rendered
//! dashboard is as deterministic as the series behind it.

use lyra_obs::timeseries::format_value;
use lyra_obs::{SchedEvent, Telemetry, TimedEvent};

/// Eight-level block characters, lowest to highest.
const TICKS: [char; 8] = ['\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}'];

/// Default chart width, columns.
pub const DEFAULT_WIDTH: usize = 60;

/// Renders `values` as a sparkline at most `width` characters wide.
/// Values fold into `width` buckets keeping each bucket's maximum (so
/// short spikes stay visible) and scale against the global min/max. A
/// flat series renders as a run of the lowest tick; an empty series as
/// the empty string.
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let n = width.min(values.len());
    let mut buckets: Vec<Option<f64>> = vec![None; n];
    for (i, v) in values.iter().enumerate() {
        let b = (i * n) / values.len();
        buckets[b] = Some(buckets[b].map_or(*v, |m| m.max(*v)));
    }
    let folded: Vec<f64> = buckets.into_iter().flatten().collect();
    let lo = folded.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = folded.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    folded
        .iter()
        .map(|v| {
            let idx = if span > 0.0 {
                (((v - lo) / span) * 7.0).round() as usize
            } else {
                0
            };
            TICKS[idx.min(7)]
        })
        .collect()
}

/// One alert transition pulled from an event log, for the dashboard's
/// alert listing.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertLine {
    /// Simulated time of the transition, milliseconds.
    pub t_ms: u64,
    /// Rule name.
    pub rule: String,
    /// Watched series.
    pub series: String,
    /// Sampled value at the transition.
    pub value: f64,
    /// Rule threshold.
    pub threshold: f64,
    /// `true` on fire, `false` on resolve.
    pub fired: bool,
}

/// Extracts every alert transition from an event log, in log order.
pub fn alerts_from_log(events: &[TimedEvent]) -> Vec<AlertLine> {
    events
        .iter()
        .filter_map(|e| match &e.event {
            SchedEvent::Alert {
                rule,
                series,
                value,
                threshold,
                fired,
            } => Some(AlertLine {
                t_ms: e.time_ms,
                rule: rule.clone(),
                series: series.clone(),
                value: *value,
                threshold: *threshold,
                fired: *fired,
            }),
            _ => None,
        })
        .collect()
}

/// Replays an event log into a derived [`Telemetry`]: one sample per
/// `SchedulerEpoch` event, with queue depth and running jobs read off
/// the epoch summary and loan/reclaim/preemption rates accumulated
/// from the events since the previous epoch.
pub fn telemetry_from_log(events: &[TimedEvent]) -> Telemetry {
    let mut t = Telemetry::default();
    let (mut loans, mut reclaims, mut preemptions, mut carry) = (0u64, 0u64, 0u64, 0u64);
    for e in events {
        match &e.event {
            SchedEvent::LoanGrant { .. } => loans += 1,
            SchedEvent::ReclaimGrant { .. } => reclaims += 1,
            SchedEvent::JobPreempt { .. } => preemptions += 1,
            SchedEvent::ReclaimCarryover { servers, .. } => carry = u64::from(*servers),
            SchedEvent::SchedulerEpoch {
                launches,
                queued,
                running,
            } => {
                t.begin_epoch(e.time_ms);
                t.sample_gauge("queue.depth", e.time_ms, f64::from(*queued));
                t.sample_gauge("jobs.running", e.time_ms, f64::from(*running));
                t.sample_gauge("epoch.launches", e.time_ms, f64::from(*launches));
                t.sample_gauge("reclaim.carry_servers", e.time_ms, carry as f64);
                t.sample_rate("rate.loans", e.time_ms, loans);
                t.sample_rate("rate.reclaims", e.time_ms, reclaims);
                t.sample_rate("rate.preemptions", e.time_ms, preemptions);
                carry = 0;
            }
            _ => {}
        }
    }
    t
}

/// Renders the full dashboard: a header, one sparkline row per series
/// (name, chart, min/last/max), the two telemetry histograms as
/// single-line summaries, and the alert transitions (if any).
pub fn render_dashboard(t: &Telemetry, alerts: &[AlertLine], width: usize) -> String {
    let mut out = String::new();
    let series: Vec<_> = t.iter().collect();
    out.push_str(&format!(
        "timeline: {} epochs, {} series\n\n",
        t.epochs,
        series.len()
    ));
    if series.is_empty() {
        out.push_str("(no telemetry series: run had no scheduler epochs)\n");
    }
    for (name, s) in &series {
        let values: Vec<f64> = s.points().iter().map(|p| p.value).collect();
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let last = values.last().copied().unwrap_or(0.0);
        out.push_str(&format!(
            "{:<24} {:<width$}  min={} last={} max={}\n",
            name,
            sparkline(&values, width),
            format_value(if lo.is_finite() { lo } else { 0.0 }),
            format_value(last),
            format_value(if hi.is_finite() { hi } else { 0.0 }),
            width = width
        ));
    }
    out.push_str(&format!(
        "\nepoch span:       {}\ndecision latency: {}\n",
        histogram_line(&t.epoch_span_ms.counts, &t.epoch_span_ms.bounds, t.epoch_span_ms.count),
        histogram_line(
            &t.decision_latency_ms.counts,
            &t.decision_latency_ms.bounds,
            t.decision_latency_ms.count
        ),
    ));
    if alerts.is_empty() {
        out.push_str("\nalerts: none\n");
    } else {
        out.push_str(&format!("\nalerts ({} transitions):\n", alerts.len()));
        for a in alerts {
            out.push_str(&format!(
                "  [{:>10}ms] {} {} ({}: {} vs threshold {})\n",
                a.t_ms,
                if a.fired { "FIRED   " } else { "resolved" },
                a.rule,
                a.series,
                format_value(a.value),
                format_value(a.threshold),
            ));
        }
    }
    out
}

/// One-line log2-histogram summary: a sparkline over the bucket counts
/// plus the observation count and the busiest bucket's upper bound.
fn histogram_line(counts: &[u64], bounds: &[f64], total: u64) -> String {
    if total == 0 {
        return "(no observations)".to_string();
    }
    let values: Vec<f64> = counts.iter().map(|c| *c as f64).collect();
    let mode = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| **c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mode_label = bounds
        .get(mode)
        .map(|b| format!("<= {}ms", format_value(*b)))
        .unwrap_or_else(|| "overflow".to_string());
    format!(
        "{} ({total} obs, mode {mode_label})",
        sparkline(&values, values.len())
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_range_and_width() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 8);
        assert_eq!(s, TICKS.iter().collect::<String>());
        // Folding keeps bucket maxima, so the spike survives.
        let folded = sparkline(&[0.0, 0.0, 9.0, 0.0, 0.0, 0.0, 0.0, 0.0], 4);
        assert_eq!(folded.chars().count(), 4);
        assert!(folded.contains(TICKS[7]));
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0], 3), TICKS[0].to_string().repeat(3));
    }

    #[test]
    fn log_replay_derives_series_and_alerts() {
        let mk = |time_ms, seq, event| TimedEvent {
            time_ms,
            seq,
            event,
        };
        let events = vec![
            mk(0, 0, SchedEvent::LoanGrant { servers: vec![1, 2] }),
            mk(
                1000,
                1,
                SchedEvent::SchedulerEpoch {
                    launches: 2,
                    queued: 5,
                    running: 3,
                },
            ),
            mk(
                1500,
                2,
                SchedEvent::JobPreempt {
                    job: 9,
                    checkpointed: true,
                    decision: None,
                },
            ),
            mk(
                2000,
                3,
                SchedEvent::Alert {
                    rule: "queue-backlog".into(),
                    series: "queue.depth".into(),
                    value: 6.0,
                    threshold: 4.0,
                    fired: true,
                },
            ),
            mk(
                2000,
                4,
                SchedEvent::SchedulerEpoch {
                    launches: 0,
                    queued: 6,
                    running: 2,
                },
            ),
        ];
        let t = telemetry_from_log(&events);
        assert_eq!(t.epochs, 2);
        assert_eq!(t.latest("queue.depth"), Some(6.0));
        assert_eq!(t.latest("rate.loans"), Some(0.0)); // both loans landed before epoch 1
        assert_eq!(t.latest("rate.preemptions"), Some(1.0));
        let alerts = alerts_from_log(&events);
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].fired);

        let dash = render_dashboard(&t, &alerts, 40);
        assert!(dash.contains("queue.depth"));
        assert!(dash.contains("FIRED"));
        assert!(dash.contains("2 epochs"));
        // Same inputs, same bytes.
        assert_eq!(dash, render_dashboard(&t, &alerts, 40));
    }

    #[test]
    fn empty_dashboard_renders_cleanly() {
        let dash = render_dashboard(&Telemetry::default(), &[], 40);
        assert!(dash.contains("no telemetry series"));
        assert!(dash.contains("(no observations)"));
        assert!(dash.contains("alerts: none"));
    }
}
