//! `lyra-bench checkpoint` / `resume` / `crash-storm`: the kill-and-
//! resume CLI.
//!
//! * `checkpoint --at <seconds> --out <file.ckpt>` — run the small
//!   observed Basic scenario with a scheduler crash injected at the
//!   given simulated time and save the crash-point state through the
//!   durable checkpoint format.
//! * `resume --ckpt <file.ckpt>` — load a checkpoint (refusing
//!   corrupted, truncated or version-mismatched files with a typed
//!   error) and drive the run to completion, printing its summary.
//! * `crash-storm [--kills <n>] [--seed <s>] [--dir <path>]` — the CI
//!   gate: kill the faulted golden scenario at `n` seeded epochs,
//!   checkpoint, restore, and require the resumed run's event log,
//!   attribution table, report and JSONL sink to be byte-identical to
//!   the uninterrupted run's. The storm logic lives in
//!   `lyra_oracle::crash` so tests and CI share one implementation.

use crate::Scale;
use lyra_sim::{
    build_scenario, FaultEvent, FaultKind, FaultPlan, ObserverConfig, RunOutcome, Scenario,
    SimCheckpoint,
};
use std::path::Path;

/// Builds the small observed Basic scenario (the same shape `smoke`
/// runs) with a scheduler crash scheduled at `at_s`.
fn crash_scenario(at_s: f64) -> Scenario {
    let mut scenario = Scenario::basic();
    scenario.cluster = Scale::Small.cluster_config();
    let mut plan = FaultPlan::none();
    plan.events.push(FaultEvent {
        time_s: at_s,
        kind: FaultKind::SchedulerCrash,
    });
    scenario.faults = Some(plan);
    scenario
}

/// `checkpoint --at <seconds> --out <file.ckpt>`: returns the process
/// exit code.
pub fn checkpoint_cmd(at_s: f64, out: &Path, log: Option<&Path>) -> i32 {
    if !(at_s.is_finite() && at_s > 0.0) {
        eprintln!("checkpoint: --at must be a positive number of seconds, got {at_s}");
        return 2;
    }
    let scenario = crash_scenario(at_s);
    let (jobs, inference) = Scale::Small.traces(5);
    let sim = match build_scenario(&scenario, &jobs, &inference) {
        Ok(sim) => sim,
        Err(e) => {
            eprintln!("checkpoint: building the run: {e}");
            return 1;
        }
    };
    let sim = match sim.with_observer(ObserverConfig {
        sink_path: log.map(Path::to_path_buf),
        ..ObserverConfig::default()
    }) {
        Ok(sim) => sim,
        Err(e) => {
            eprintln!("checkpoint: opening the event-log sink: {e}");
            return 1;
        }
    };
    match sim.run_to_outcome(&scenario.name) {
        Ok(RunOutcome::Crashed(state)) => {
            let ckpt = SimCheckpoint::new(scenario, jobs, inference, *state);
            match ckpt.save(out) {
                Ok(()) => {
                    println!(
                        "checkpoint: killed the scheduler at {at_s}s, state saved to {}",
                        out.display()
                    );
                    0
                }
                Err(e) => {
                    eprintln!("checkpoint: saving {}: {e}", out.display());
                    1
                }
            }
        }
        Ok(RunOutcome::Completed(report)) => {
            eprintln!(
                "checkpoint: the run finished ({} jobs) before {at_s}s — nothing to kill; \
                 pick an earlier --at",
                report.completed
            );
            1
        }
        Err(e) => {
            eprintln!("checkpoint: run failed: {e}");
            1
        }
    }
}

/// `resume --ckpt <file.ckpt>`: returns the process exit code.
pub fn resume_cmd(ckpt: &Path) -> i32 {
    let loaded = match SimCheckpoint::load(ckpt) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("resume: refusing {}: {e}", ckpt.display());
            return 1;
        }
    };
    let name = loaded.scenario.name.clone();
    let sim = match loaded.into_simulation() {
        Ok(sim) => sim,
        Err(e) => {
            eprintln!("resume: rebuilding the run: {e}");
            return 1;
        }
    };
    match sim.run_to_outcome(&name) {
        Ok(RunOutcome::Completed(report)) => {
            println!(
                "resume: `{name}` ran to completion — {} of {} jobs, mean JCT {:.0}s, \
                 overall usage {:.3}",
                report.completed, report.submitted, report.jct.mean, report.overall_usage
            );
            0
        }
        Ok(RunOutcome::Crashed(_)) => {
            eprintln!(
                "resume: the run crashed again (a later SchedulerCrash event remains in \
                 its fault plan); checkpoint it again to continue"
            );
            1
        }
        Err(e) => {
            eprintln!("resume: run failed: {e}");
            1
        }
    }
}

/// `crash-storm`: runs the kill-and-resume gate and returns the
/// process exit code (0 = every kill point byte-identical).
pub fn storm_cmd(kills: usize, seed: u64, dir: &Path) -> i32 {
    if kills == 0 {
        eprintln!("crash-storm: --kills must be at least 1");
        return 2;
    }
    match lyra_oracle::crash::crash_storm(kills, seed, dir) {
        Ok(report) => {
            println!("{}", report.render());
            i32::from(!report.passed())
        }
        Err(e) => {
            eprintln!("crash-storm: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_then_resume_round_trips_via_cli_paths() {
        let dir = std::env::temp_dir().join(format!("lyra-bench-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("cli.ckpt");
        assert_eq!(checkpoint_cmd(3_600.0, &ckpt, None), 0);
        assert_eq!(resume_cmd(&ckpt), 0);
        // A corrupted copy is refused, not partially loaded.
        let mut bytes = std::fs::read(&ckpt).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let bad = dir.join("cli-bad.ckpt");
        std::fs::write(&bad, &bytes).unwrap();
        assert_eq!(resume_cmd(&bad), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rejects_bad_kill_times() {
        let out = Path::new("unused.ckpt");
        assert_eq!(checkpoint_cmd(-1.0, out, None), 2);
        assert_eq!(checkpoint_cmd(f64::NAN, out, None), 2);
    }

    #[test]
    fn resume_requires_checkpoint_to_exist() {
        assert_eq!(resume_cmd(Path::new("/nonexistent/never.ckpt")), 1);
    }
}

// `checkpoint::resume` is the library-level one-shot path; the CLI
// splits load and run to report each failure precisely, but keep the
// one-shot path covered too.
#[cfg(test)]
mod one_shot {
    use super::*;
    use lyra_sim::checkpoint;

    #[test]
    fn library_resume_matches_cli_resume() {
        let dir = std::env::temp_dir().join(format!("lyra-bench-oneshot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("one.ckpt");
        assert_eq!(checkpoint_cmd(7_200.0, &ckpt, None), 0);
        match checkpoint::resume(&ckpt, "basic") {
            Ok(RunOutcome::Completed(report)) => assert!(report.completed > 0),
            other => panic!("one-shot resume did not complete: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
