//! Plain-text table rendering for experiment output.
//!
//! The harness prints the same rows/columns the paper's tables report so
//! shapes can be compared side by side.

use lyra_sim::SimReport;
use std::fmt::Write as _;

/// Renders a column-aligned table; the first row is the header.
pub fn render(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            let pad = widths[i] - cell.chars().count();
            out.push_str(cell);
            for _ in 0..pad + 2 {
                out.push(' ');
            }
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().map(|w| w + 2).sum();
            for _ in 0..total {
                out.push('-');
            }
            out.push('\n');
        }
    }
    out
}

/// Formats seconds with no decimals (the paper's tables use integral
/// seconds).
pub fn secs(v: f64) -> String {
    format!("{v:.0}")
}

/// Formats a ratio as a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Formats a fraction with two decimals (usage columns).
pub fn frac(v: f64) -> String {
    format!("{v:.2}")
}

/// The Table 5 row for one report: queuing (mean/median/95), JCT
/// (mean/median/95), training usage, overall usage, preemption ratio.
pub fn table5_row(label: &str, r: &SimReport, loaning: bool) -> Vec<String> {
    vec![
        label.to_string(),
        secs(r.queuing.mean),
        secs(r.queuing.p50),
        secs(r.queuing.p95),
        secs(r.jct.mean),
        secs(r.jct.p50),
        secs(r.jct.p95),
        frac(r.training_usage),
        if loaning {
            frac(r.overall_usage)
        } else {
            "NA".to_string()
        },
        if loaning {
            pct(r.preemption_ratio)
        } else {
            "NA".to_string()
        },
    ]
}

/// The Table 5 header.
pub fn table5_header() -> Vec<String> {
    [
        "Scheme", "QT mean", "QT p50", "QT p95", "JCT mean", "JCT p50", "JCT p95", "Train",
        "Overall", "Preempt",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// The Table 8 row: queuing and JCT percentiles 50/75/95/99.
pub fn table8_row(label: &str, r: &SimReport) -> Vec<String> {
    vec![
        label.to_string(),
        secs(r.queuing.p50),
        secs(r.queuing.p75),
        secs(r.queuing.p95),
        secs(r.queuing.p99),
        secs(r.jct.p50),
        secs(r.jct.p75),
        secs(r.jct.p95),
        secs(r.jct.p99),
    ]
}

/// The Table 8 header.
pub fn table8_header() -> Vec<String> {
    [
        "Scheme", "QT p50", "QT p75", "QT p95", "QT p99", "JCT p50", "JCT p75", "JCT p95",
        "JCT p99",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Renders a figure-style series as `x  y` pairs with a title line.
pub fn render_series(title: &str, xs: &[f64], ys: &[f64]) -> String {
    let mut out = format!("# {title}\n");
    for (x, y) in xs.iter().zip(ys) {
        writeln!(out, "{x:.3}\t{y:.4}").expect("string write cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_sim::Percentiles;

    fn dummy_report() -> SimReport {
        SimReport {
            name: "x".into(),
            queuing: Percentiles {
                mean: 100.0,
                p50: 50.0,
                p75: 75.0,
                p95: 95.0,
                p99: 99.0,
            },
            jct: Percentiles {
                mean: 1000.0,
                p50: 500.0,
                p75: 750.0,
                p95: 950.0,
                p99: 990.0,
            },
            training_usage: 0.861,
            overall_usage: 0.652,
            on_loan_usage: 0.93,
            on_loan_server_usage: 0.95,
            hourly_on_loan_server_usage: vec![],
            preemption_ratio: 0.1224,
            collateral_damage: 0.05,
            flex_satisfied: 0.535,
            completed: 10,
            submitted: 10,
            loan_ops: 1,
            reclaim_ops: 1,
            scaling_ops: 2,
            rm_ops: 3,
            control_plane_latency_s: 12.0,
            hourly_overall_usage: vec![],
            hourly_on_loan_usage: vec![],
            on_loan_queuing: Percentiles::default(),
            on_loan_jct: Percentiles::default(),
            fault: lyra_sim::FaultStats::default(),
            deadlines: lyra_sim::DeadlineStats::default(),
            records: vec![],
            events: vec![],
            metrics: vec![],
            profile: lyra_obs::Profile::default(),
            attribution: lyra_obs::AttributionSummary::default(),
            telemetry: lyra_obs::Telemetry::default(),
            provenance: lyra_obs::ProvenanceGraph::default(),
        }
    }

    #[test]
    fn render_aligns_columns() {
        let rows = vec![
            vec!["a".into(), "long-header".into()],
            vec!["longer-cell".into(), "b".into()],
        ];
        let s = render(&rows);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with('-'));
        // Both data columns aligned: "b" starts at the same offset as
        // "long-header".
        assert_eq!(lines[0].find("long-header"), lines[2].find('b'));
    }

    #[test]
    fn table5_row_formats() {
        let row = table5_row("Lyra", &dummy_report(), true);
        assert_eq!(row[0], "Lyra");
        assert_eq!(row[1], "100");
        assert_eq!(row[7], "0.86");
        assert_eq!(row[9], "12.24%");
        let row = table5_row("Gandiva", &dummy_report(), false);
        assert_eq!(row[8], "NA");
        assert_eq!(row[9], "NA");
    }

    #[test]
    fn table8_row_has_percentiles() {
        let row = table8_row("AFS", &dummy_report());
        assert_eq!(row[2], "75");
        assert_eq!(row[8], "990");
        assert_eq!(table8_header().len(), row.len());
        assert_eq!(table5_header().len(), 10);
    }

    #[test]
    fn series_renders_pairs() {
        let s = render_series("t", &[1.0, 2.0], &[0.5, 0.7]);
        assert!(s.starts_with("# t\n"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn empty_table_is_empty() {
        assert_eq!(render(&[]), "");
    }
}
