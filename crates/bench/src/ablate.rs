//! The policy × scenario ablation sweep (`lyra-bench ablate`).
//!
//! Every policy in [`PolicyRegistry::builtin`] runs against every cell
//! of the scenario zoo ([`lyra_sim::zoo`]), producing one table row per
//! (policy, scenario) pair: completions, mean and p99 JCT, and the
//! deadline-miss rollup. The sweep is a pure function of the seed —
//! ci.sh runs the smoke sweep twice and asserts the rendered bytes are
//! identical — so rendering avoids wall-clock, environment or map-order
//! inputs entirely.

use crate::tables::render;
use lyra_core::policies::PolicyRegistry;
use lyra_sim::{run_scenario, validate_scenario, zoo};

/// The pinned policy subset the `--smoke` sweep runs: one baseline,
/// the full system and one ablation — enough to exercise the registry,
/// both dispatch paths and the deadline rollup in a few seconds.
pub const SMOKE_POLICIES: [&str; 3] = ["fifo-backfill", "lyra", "lyra-greedy-phase2"];

/// Renders the full sweep. `smoke` restricts the policy axis to
/// [`SMOKE_POLICIES`], `policy` restricts it to one named policy
/// (checked against the registry — a typo is a clean error, not a
/// panic), and `seed` perturbs every cell's pinned trace seed (0
/// reproduces the golden zoo cells bit-for-bit).
///
/// # Errors
///
/// The validation failure, when a scenario cell rejects its
/// configuration or a policy name is unknown to the builtin registry.
pub fn sweep(smoke: bool, seed: u64, policy: Option<&str>) -> Result<String, String> {
    let registry = PolicyRegistry::builtin();
    let policies: Vec<String> = if let Some(name) = policy {
        vec![name.to_string()]
    } else if smoke {
        SMOKE_POLICIES.iter().map(|s| s.to_string()).collect()
    } else {
        registry.names().iter().map(|s| s.to_string()).collect()
    };
    let cells = zoo::cases();

    let mut rows = vec![vec![
        "Policy".to_string(),
        "Scenario".to_string(),
        "Completed".to_string(),
        "JCT mean".to_string(),
        "JCT p99".to_string(),
        "Deadline miss".to_string(),
    ]];
    for policy in &policies {
        for cell in &cells {
            let base = zoo::ZooCase {
                seed: cell.seed.wrapping_add(seed),
                ..*cell
            };
            let (mut scenario, jobs, inference) = base.build();
            scenario.policy = policy.clone();
            scenario.name = format!("ablate-{policy}-{}", cell.name);
            validate_scenario(&scenario, &jobs)
                .map_err(|e| format!("ablate: {}: {e}", scenario.name))?;
            let r = run_scenario(&scenario, &jobs, &inference)
                .map_err(|e| format!("ablate: {}: {e}", scenario.name))?;
            rows.push(vec![
                policy.clone(),
                cell.name.to_string(),
                format!("{}/{}", r.completed, r.submitted),
                format!("{:.1}", r.jct.mean),
                format!("{:.1}", r.jct.p99),
                format!("{}/{}", r.deadlines.missed, r.deadlines.with_deadline),
            ]);
        }
    }
    let mut out = format!(
        "ablate: {} policies x {} scenarios, seed {seed}\n",
        policies.len(),
        cells.len()
    );
    out.push_str(&render(&rows));
    Ok(out)
}

/// The `ablate` subcommand: renders the sweep to stdout and, when
/// `out` names a file, writes the identical bytes there too. Returns
/// the process exit code: 0 on success, 2 on configuration errors
/// (unknown policy, invalid scenario), 1 on I/O failure.
#[must_use]
pub fn run(smoke: bool, seed: u64, policy: Option<&str>, out: Option<&str>) -> i32 {
    let text = match sweep(smoke, seed, policy) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    print!("{text}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("ablate: cannot write {path}: {e}");
            return 1;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_deterministic_and_covers_every_cell() {
        let a = sweep(true, 0, None).expect("smoke sweep runs");
        let b = sweep(true, 0, None).expect("smoke sweep runs again");
        assert_eq!(a, b, "same seed must render identical bytes");
        for cell in zoo::cases() {
            assert!(
                a.matches(cell.name).count() >= SMOKE_POLICIES.len(),
                "cell {} missing from the sweep",
                cell.name
            );
        }
        // The deadline cell reports a non-trivial rollup denominator.
        assert!(
            a.lines()
                .filter(|l| l.contains("deadline"))
                .all(|l| !l.contains("0/0")),
            "deadline rows must roll up misses over a non-empty denominator:\n{a}"
        );
    }

    #[test]
    fn different_seeds_change_the_sweep() {
        let a = sweep(true, 0, None).expect("seed 0");
        let b = sweep(true, 7, None).expect("seed 7");
        assert_ne!(a, b, "perturbing the seed must move the traces");
    }

    #[test]
    fn unknown_policy_is_a_clean_error() {
        let err = sweep(false, 0, Some("no-such-policy")).expect_err("must reject");
        assert!(
            err.contains("no-such-policy") && err.contains("known:"),
            "error must name the typo and the alternatives: {err}"
        );
    }
}
