//! `lyra-bench golden`: the golden-trace regression gate CLI.
//!
//! * `golden` — rerun every pinned case (twice each) and compare its
//!   JSONL event log byte-for-byte against the committed files under
//!   `tests/golden/`; exit non-zero on any diff.
//! * `golden --bless` — regenerate the committed logs (after an
//!   *intended* behavioural change; review the diff before committing).
//! * `golden --mutate` — mutation smoke: flip the phase-2 solver
//!   constant and assert the gate AND a differential oracle both fire.
//!
//! The actual comparison logic lives in `lyra_oracle::golden` so the
//! test suite (`crates/oracle/tests/golden.rs`) and CI share one
//! implementation with this CLI.

use lyra_oracle::golden;

/// Runs the requested golden-gate mode and returns the process exit
/// code (0 = gate clean / smoke proved the gate fires).
pub fn run(bless: bool, mutate: bool) -> i32 {
    let dir = golden::default_dir();
    if bless {
        return match golden::bless(&dir) {
            Ok(written) => {
                for w in &written {
                    println!("golden: blessed {w}");
                }
                println!("golden: {} case(s) blessed; review and commit", written.len());
                0
            }
            Err(e) => {
                eprintln!("golden: bless failed: {e}");
                1
            }
        };
    }
    if mutate {
        return match golden::mutation_smoke(&dir) {
            Ok(()) => {
                println!(
                    "golden: mutation smoke passed (gate + differential oracle both fire \
                     under the perturbed phase-2 solver)"
                );
                0
            }
            Err(e) => {
                eprintln!("golden: mutation smoke FAILED: {e}");
                1
            }
        };
    }
    let diffs = golden::compare(&dir);
    if diffs.is_empty() {
        println!(
            "golden: {} case(s) match the committed logs in {}",
            golden::cases().len(),
            dir.display()
        );
        0
    } else {
        for d in &diffs {
            eprintln!("golden: {} DIVERGED: {}", d.name, d.detail);
        }
        eprintln!(
            "golden: {} case(s) diverged; if intended, rerun with --bless and commit",
            diffs.len()
        );
        1
    }
}
