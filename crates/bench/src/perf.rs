//! `lyra-bench perf`: the scheduler hot-path benchmark.
//!
//! Times scheduler epochs (snapshot maintenance + two-phase allocation +
//! placement) over a trace-scale Basic scenario via the span profiler,
//! once with the engine's incremental paths (snapshot cache + the
//! incremental preemption-cost reclaim engine) and once with the legacy
//! from-scratch rebuilds, and reports the per-epoch speedup. Both
//! configurations are first run *observed* under the same seed and must
//! produce byte-identical event logs and identical reports — the
//! benchmark refuses to time configurations that diverge.
//!
//! `--smoke` runs the divergence gate, the telemetry-overhead budget,
//! the provenance-overhead budget (the decision-provenance tracker may
//! cost at most 5 % over plain observation) and the reclaim-heavy
//! probe (gating `core.reclaim`'s self-time share) at Small (CI)
//! scale; the full run times at paper scale and writes
//! `BENCH_scheduler.json` (including the overhead probes).
//!
//! Every run — smoke and full — *appends* its overhead probes to the
//! `history` array inside `BENCH_scheduler.json` rather than
//! overwriting, so regressions are visible as a trend across runs.

use crate::Scale;
use lyra_obs::{PhaseStat, Profile};
use lyra_sim::{run_scenario, run_scenario_observed, ObserverConfig, Scenario, SimReport};
use lyra_trace::{InferenceTrace, JobTrace};
use serde::{Serialize, Value};

/// Span names surfaced in the per-phase comparison table.
const PHASES: &[&str] = &[
    "sim.scheduler_tick",
    "sim.snapshot_refresh",
    "core.allocation",
    "core.mckp",
    "core.placement",
    "core.placement.gang",
    "core.placement.flex",
    "core.reclaim",
    "cluster.reclaim",
];

/// Timing of one engine configuration (`BENCH_scheduler.json` schema).
#[derive(Debug, Serialize)]
pub struct ModeStats {
    /// Scheduler epochs executed by the timed run.
    pub epochs: u64,
    /// Total wall time inside `sim.scheduler_tick`, seconds.
    pub total_s: f64,
    /// Mean wall time per scheduler epoch, milliseconds.
    pub mean_ms: f64,
    /// Full span profile of the timed run (`name`/`calls`/`total_s`/
    /// `self_s` per phase, descending self time).
    pub phases: Vec<PhaseStat>,
}

/// Wall time of the telemetry/observer overhead probe: the same
/// scenario run bare and under full observation (event log, metrics,
/// audit, telemetry sampling — everything `ObserverConfig::default()`
/// turns on).
#[derive(Debug, Clone, Serialize)]
pub struct ObserverOverhead {
    /// Wall time of the unobserved run, seconds.
    pub unobserved_s: f64,
    /// Wall time of the fully observed run, seconds.
    pub observed_s: f64,
    /// `observed_s / unobserved_s` (0 when the bare run is too fast to
    /// measure).
    pub ratio: f64,
}

/// Wall time of the provenance overhead probe: the same scenario run
/// observed with the decision-provenance tracker off and on. The
/// tracker rides the existing emission path (one graph update per
/// event), so its cost must stay marginal next to observation itself.
#[derive(Debug, Clone, Serialize)]
pub struct ProvenanceOverhead {
    /// Wall time of the observed run with provenance tracking off,
    /// seconds.
    pub observed_s: f64,
    /// Wall time of the observed run with provenance tracking on,
    /// seconds.
    pub provenance_s: f64,
    /// `provenance_s / observed_s` (0 when the base run is too fast to
    /// measure).
    pub ratio: f64,
}

/// The provenance-tracking run may take at most 5 % over the plain
/// observed run…
pub const PROVENANCE_BUDGET_RATIO: f64 = 1.05;
/// …plus this much absolute slack: Small-scale CI runs finish in well
/// under a second, where a 5 % relative budget alone would be pure
/// timer noise.
pub const PROVENANCE_BUDGET_SLACK_S: f64 = 0.5;

/// The observed run may take at most `OVERHEAD_BUDGET_RATIO` × the
/// bare run plus `OVERHEAD_BUDGET_SLACK_S` of absolute slack. The
/// ratio is deliberately generous — CI machines are noisy and the
/// Small-scale runs are short — but it still catches an accidental
/// O(jobs × epochs) regression in the telemetry sampling hot path.
pub const OVERHEAD_BUDGET_RATIO: f64 = 4.0;
/// Absolute slack for the overhead budget, seconds.
pub const OVERHEAD_BUDGET_SLACK_S: f64 = 2.0;

/// Budget for `core.reclaim`'s share of total span self time in the
/// reclaim-heavy smoke probe. Before the incremental preemption-cost
/// engine, server selection alone burned ~57 % of a trace-scale run;
/// with it the share sits in the low single digits even under violent
/// loan/reclaim churn. The budget is generous (CI machines are noisy
/// and Small runs are short) but still far below the from-scratch
/// regime, so an accidental O(servers × reclaims) regression trips it.
pub const RECLAIM_SHARE_BUDGET: f64 = 0.25;
/// Minimum total self time before the reclaim share gate applies: on a
/// fast machine the whole probe is a handful of milliseconds and the
/// share estimate is pure noise.
pub const RECLAIM_SHARE_MIN_TOTAL_S: f64 = 0.05;

/// Times the scenario bare vs fully observed and returns the probe.
fn observer_overhead(
    scenario: &Scenario,
    jobs: &JobTrace,
    inference: &InferenceTrace,
) -> ObserverOverhead {
    let t0 = std::time::Instant::now();
    run_scenario(scenario, jobs, inference).unwrap_or_else(|e| panic!("bare run failed: {e}"));
    let unobserved_s = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    observed(scenario, jobs, inference);
    let observed_s = t1.elapsed().as_secs_f64();
    ObserverOverhead {
        unobserved_s,
        observed_s,
        ratio: if unobserved_s > 0.0 {
            observed_s / unobserved_s
        } else {
            0.0
        },
    }
}

/// Times the scenario observed with provenance off vs on.
fn provenance_overhead(
    scenario: &Scenario,
    jobs: &JobTrace,
    inference: &InferenceTrace,
) -> ProvenanceOverhead {
    let off = ObserverConfig {
        provenance: false,
        ..ObserverConfig::default()
    };
    let t0 = std::time::Instant::now();
    run_scenario_observed(scenario, jobs, inference, off)
        .unwrap_or_else(|e| panic!("observed run failed: {e}"));
    let observed_s = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    observed(scenario, jobs, inference);
    let provenance_s = t1.elapsed().as_secs_f64();
    ProvenanceOverhead {
        observed_s,
        provenance_s,
        ratio: if observed_s > 0.0 {
            provenance_s / observed_s
        } else {
            0.0
        },
    }
}

/// One `history` entry in `BENCH_scheduler.json`: the overhead probes
/// of a single `perf` invocation.
#[derive(Debug, Serialize)]
pub struct HistoryEntry {
    /// `"smoke"` or `"full"`.
    pub mode: String,
    /// Trace/cluster scale the probes ran at.
    pub scale: String,
    /// Bare vs observed wall time.
    pub observer: ObserverOverhead,
    /// Observed vs provenance-tracking wall time.
    pub provenance: ProvenanceOverhead,
}

/// Appends `entry` to the `history` array of `BENCH_scheduler.json`,
/// creating the file or the array as needed and leaving every other
/// field of the report intact. With `report`, the top-level benchmark
/// fields are replaced first (the full run refreshing its numbers)
/// while `history` still accumulates.
fn record_run(report: Option<&PerfReport>, entry: &HistoryEntry) -> Result<(), String> {
    let path = "BENCH_scheduler.json";
    let prior = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<Value>(&s).ok());
    let mut history = match prior.as_ref().and_then(|v| v.get("history")) {
        Some(Value::Array(items)) => items.clone(),
        _ => Vec::new(),
    };
    history.push(entry.to_value());
    let mut root = match report {
        Some(r) => r.to_value(),
        None => prior.unwrap_or(Value::Object(Vec::new())),
    };
    let Value::Object(pairs) = &mut root else {
        return Err(format!("{path}: top level is not an object"));
    };
    pairs.retain(|(k, _)| k != "history");
    pairs.push(("history".to_string(), Value::Array(history)));
    let json =
        serde_json::to_string_pretty(&root).map_err(|e| format!("serialise {path}: {e:?}"))?;
    std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))
}

/// The benchmark result written to `BENCH_scheduler.json`.
#[derive(Debug, Serialize)]
pub struct PerfReport {
    /// Trace/cluster scale the timing ran at.
    pub scale: String,
    /// Trace seed (same for both configurations).
    pub seed: u64,
    /// Jobs in the trace.
    pub jobs: usize,
    /// Timing with the incremental snapshot cache.
    pub incremental: ModeStats,
    /// Timing with the from-scratch rebuild every epoch.
    pub from_scratch: ModeStats,
    /// Mean from-scratch epoch time over mean incremental epoch time.
    pub speedup: f64,
    /// The observed same-seed runs produced equal `SimReport`s.
    pub identical_reports: bool,
    /// ... and byte-identical event logs.
    pub identical_event_logs: bool,
    /// Telemetry/observer overhead probe (bare vs observed wall time).
    pub observer: ObserverOverhead,
    /// Provenance overhead probe (observed wall time with the
    /// decision-provenance tracker off vs on).
    pub provenance: ProvenanceOverhead,
}

fn epoch_stat(profile: &Profile) -> (u64, f64) {
    profile
        .0
        .iter()
        .find(|p| p.name == "sim.scheduler_tick")
        .map_or((0, 0.0), |p| (p.calls, p.total_s))
}

fn mode_stats(profile: Profile) -> ModeStats {
    let (epochs, total_s) = epoch_stat(&profile);
    ModeStats {
        epochs,
        total_s,
        mean_ms: if epochs > 0 {
            1000.0 * total_s / epochs as f64
        } else {
            0.0
        },
        phases: profile.0,
    }
}

/// Runs the scenario with span profiling on (no observer: the event log
/// and audit trail stay off, exactly like a production run) and returns
/// the collected profile.
fn timed_run(scenario: &Scenario, jobs: &JobTrace, inference: &InferenceTrace) -> Profile {
    lyra_obs::span::set_enabled(true);
    let _ = lyra_obs::span::take_profile(); // drop any residue
    run_scenario(scenario, jobs, inference).unwrap_or_else(|e| panic!("timed run failed: {e}"));
    let profile = lyra_obs::span::take_profile();
    lyra_obs::span::set_enabled(false);
    profile
}

fn observed(scenario: &Scenario, jobs: &JobTrace, inference: &InferenceTrace) -> SimReport {
    run_scenario_observed(scenario, jobs, inference, ObserverConfig::default())
        .unwrap_or_else(|e| panic!("observed run failed: {e}"))
}

/// Reclaim-heavy probe: a Small-scale scenario tuned for loan/reclaim
/// churn (saturated training queue + violently bursty inference trace),
/// timed once, gated on `core.reclaim`'s share of total self time.
/// Returns the process exit code.
fn reclaim_probe() -> i32 {
    let scale = Scale::Small;
    let seed = 7;
    let mut trace_config = scale.trace_config(seed);
    // Saturate training over four days: with the queue always deep,
    // every loaned server is wanted and every inference spike forces a
    // reclaim.
    trace_config.days = 4;
    trace_config.target_load = 1.4;
    let jobs = JobTrace::generate(trace_config);
    let mut inf_config = scale.inference_config(seed ^ 0xA5A5);
    // Frequent ~10 %-of-capacity bursts on top of the diurnal wave keep
    // the orchestrator flip-flopping between loaning and reclaiming.
    inf_config.days = trace_config.days + 30;
    inf_config.burst_prob = 0.25;
    inf_config.burst_mean = 0.10;
    inf_config.noise = 0.05;
    let inference = InferenceTrace::generate(inf_config);
    let mut scenario = Scenario::basic();
    scenario.cluster = scale.cluster_config();
    // A 60 s orchestrator tick (vs the paper's 300 s) multiplies the
    // loan/reclaim decision rate without growing the cluster.
    scenario.sim.orchestrator_interval_s = 60.0;
    let profile = timed_run(&scenario, &jobs, &inference);
    let total_self: f64 = profile.0.iter().map(|p| p.self_s).sum();
    let (reclaim_calls, reclaim_self) = profile
        .0
        .iter()
        .find(|p| p.name == "core.reclaim")
        .map_or((0, 0.0), |p| (p.calls, p.self_s));
    let share = if total_self > 0.0 {
        reclaim_self / total_self
    } else {
        0.0
    };
    println!(
        "reclaim probe: core.reclaim {reclaim_self:.4}s self over {reclaim_calls} calls \
         = {:.1}% of {total_self:.4}s total self time (budget {:.0}%)",
        100.0 * share,
        100.0 * RECLAIM_SHARE_BUDGET
    );
    if total_self >= RECLAIM_SHARE_MIN_TOTAL_S && share > RECLAIM_SHARE_BUDGET {
        eprintln!(
            "perf: reclaim share budget EXCEEDED: core.reclaim burned {:.1}% of \
             self time under reclaim churn (budget {:.0}%)",
            100.0 * share,
            100.0 * RECLAIM_SHARE_BUDGET
        );
        return 1;
    }
    0
}

fn phase_row(stats: &[PhaseStat], name: &str) -> Option<(u64, f64)> {
    stats
        .iter()
        .find(|p| p.name == name)
        .map(|p| (p.calls, p.total_s))
}

/// Runs the benchmark; returns the process exit code. `smoke` restricts
/// to the Small-scale divergence gate (used by ci.sh).
pub fn run(smoke: bool) -> i32 {
    // Full is the paper's configuration (15 days, 443 + 520 servers,
    // ~50k jobs): the trace-scale regime where the legacy from-scratch
    // rebuild pays an O(all jobs) scan every epoch.
    let scale = if smoke { Scale::Small } else { Scale::Full };
    let seed = 5;
    let (jobs, inference) = if smoke {
        scale.traces(seed)
    } else {
        // Saturate the cluster: with offered load above capacity the
        // pending queue stays deep, which is the regime where snapshot
        // maintenance dominates the scheduler epoch — precisely the hot
        // path this benchmark guards.
        let mut trace_config = scale.trace_config(seed);
        trace_config.target_load = 1.4;
        (
            JobTrace::generate(trace_config),
            InferenceTrace::generate(scale.inference_config(seed ^ 0x5A5A)),
        )
    };
    let mut incremental = Scenario::basic();
    incremental.cluster = scale.cluster_config();
    incremental.sim.incremental_snapshot = true;
    incremental.sim.incremental_reclaim = true;
    let mut from_scratch = incremental.clone();
    from_scratch.sim.incremental_snapshot = false;
    from_scratch.sim.incremental_reclaim = false;

    // Time each configuration FIRST, while the process heap is fresh:
    // the divergence and overhead passes below run fully observed at
    // trace scale, and the allocator churn they leave behind inflates
    // timings taken afterwards by ~25% (measured). The modes alternate
    // across repetitions and each keeps its *fastest* repetition:
    // transient machine noise (frequency scaling, neighbours) only ever
    // slows a run down, so the minimum is the stable estimate.
    let timed = if smoke {
        None
    } else {
        const REPS: usize = 3;
        run_scenario(&incremental, &jobs, &inference).expect("warmup run");
        let mut inc: Option<ModeStats> = None;
        let mut scr: Option<ModeStats> = None;
        for _ in 0..REPS {
            let i = mode_stats(timed_run(&incremental, &jobs, &inference));
            if inc.as_ref().is_none_or(|best| i.mean_ms < best.mean_ms) {
                inc = Some(i);
            }
            let s = mode_stats(timed_run(&from_scratch, &jobs, &inference));
            if scr.as_ref().is_none_or(|best| s.mean_ms < best.mean_ms) {
                scr = Some(s);
            }
        }
        Some((inc.expect("timed reps"), scr.expect("timed reps")))
    };

    // Divergence gate: under the same seed the two engine configurations
    // must be observationally indistinguishable.
    let a = observed(&incremental, &jobs, &inference);
    let b = observed(&from_scratch, &jobs, &inference);
    let identical_event_logs = a.events == b.events;
    let identical_reports = a == b;
    if !identical_event_logs || !identical_reports {
        eprintln!(
            "perf: incremental snapshot DIVERGED from the from-scratch rebuild \
             (identical logs: {identical_event_logs}, identical reports: {identical_reports})"
        );
        return 1;
    }
    // Telemetry overhead budget: full observation (event log + metrics
    // + audit + telemetry sampling) must stay within a generous
    // multiple of the bare run. Gated in smoke (ci.sh), reported in the
    // full benchmark.
    let overhead = observer_overhead(&incremental, &jobs, &inference);
    println!(
        "observer overhead: {:.3}s bare vs {:.3}s observed ({:.2}x, budget {}x + {}s)",
        overhead.unobserved_s,
        overhead.observed_s,
        overhead.ratio,
        OVERHEAD_BUDGET_RATIO,
        OVERHEAD_BUDGET_SLACK_S
    );
    // Provenance overhead budget: the decision-provenance tracker may
    // cost at most 5 % (plus slack) over plain observation. Gated in
    // smoke, reported in the full benchmark.
    let prov_overhead = provenance_overhead(&incremental, &jobs, &inference);
    println!(
        "provenance overhead: {:.3}s observed vs {:.3}s with provenance \
         ({:.2}x, budget {}x + {}s)",
        prov_overhead.observed_s,
        prov_overhead.provenance_s,
        prov_overhead.ratio,
        PROVENANCE_BUDGET_RATIO,
        PROVENANCE_BUDGET_SLACK_S
    );
    let entry = HistoryEntry {
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        scale: format!("{scale:?}").to_lowercase(),
        observer: overhead.clone(),
        provenance: prov_overhead.clone(),
    };
    if smoke {
        if overhead.observed_s
            > OVERHEAD_BUDGET_RATIO * overhead.unobserved_s + OVERHEAD_BUDGET_SLACK_S
        {
            eprintln!(
                "perf: telemetry overhead budget EXCEEDED \
                 ({:.3}s observed vs {:.3}s bare)",
                overhead.observed_s, overhead.unobserved_s
            );
            return 1;
        }
        if prov_overhead.provenance_s
            > PROVENANCE_BUDGET_RATIO * prov_overhead.observed_s + PROVENANCE_BUDGET_SLACK_S
        {
            eprintln!(
                "perf: provenance overhead budget EXCEEDED \
                 ({:.3}s with provenance vs {:.3}s observed)",
                prov_overhead.provenance_s, prov_overhead.observed_s
            );
            return 1;
        }
        let rc = reclaim_probe();
        if rc != 0 {
            return rc;
        }
        if let Err(e) = record_run(None, &entry) {
            eprintln!("perf: {e}");
            return 1;
        }
        println!(
            "perf smoke: incremental and from-scratch runs identical \
             ({} jobs, {} events, scale {:?}); telemetry, provenance and \
             reclaim overheads within budget; probes appended to \
             BENCH_scheduler.json history",
            a.completed,
            a.events.len(),
            scale
        );
        return 0;
    }

    let (inc, scr) = timed.expect("timed benchmark runs in the full configuration");
    let speedup = if inc.mean_ms > 0.0 {
        scr.mean_ms / inc.mean_ms
    } else {
        0.0
    };

    println!(
        "scheduler-epoch benchmark ({:?}, seed {seed}, {} jobs, {} epochs)\n",
        scale,
        jobs.jobs.len(),
        inc.epochs
    );
    println!(
        "{:<24} {:>10} {:>14} {:>14}",
        "phase", "calls", "incremental_s", "from_scratch_s"
    );
    for name in PHASES {
        let i = phase_row(&inc.phases, name);
        let s = phase_row(&scr.phases, name);
        if i.is_none() && s.is_none() {
            continue;
        }
        println!(
            "{:<24} {:>10} {:>14.6} {:>14.6}",
            name,
            i.or(s).map_or(0, |(c, _)| c),
            i.map_or(0.0, |(_, t)| t),
            s.map_or(0.0, |(_, t)| t),
        );
    }
    println!(
        "\nepoch mean: {:.3} ms incremental vs {:.3} ms from scratch → speedup {speedup:.2}x",
        inc.mean_ms, scr.mean_ms
    );
    if speedup < 2.0 {
        eprintln!("perf: warning: speedup below the 2x target (timing noise or regression)");
    }

    let report = PerfReport {
        scale: format!("{scale:?}").to_lowercase(),
        seed,
        jobs: jobs.jobs.len(),
        incremental: inc,
        from_scratch: scr,
        speedup,
        identical_reports,
        identical_event_logs,
        observer: overhead,
        provenance: prov_overhead,
    };
    if let Err(e) = record_run(Some(&report), &entry) {
        eprintln!("perf: {e}");
        return 1;
    }
    println!("wrote BENCH_scheduler.json (history appended)");
    0
}
