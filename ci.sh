#!/usr/bin/env sh
# Tier-1 gate: build, test, lint, docs, smoke, oracles. Run from the
# repo root.
set -eu

cargo build --release --workspace
cargo build --release --examples

# Workspace tests, with a total-count summary at the end. No pipeline
# here: plain sh has no pipefail, so `cargo test | tee` would report
# tee's exit status and a failing suite would slip through the gate.
test_log=$(mktemp)
if ! cargo test -q --workspace >"$test_log" 2>&1; then
  cat "$test_log"
  rm -f "$test_log"
  echo "ci: workspace tests failed" >&2
  exit 1
fi
cat "$test_log"
total_passed=$(grep -o '[0-9]* passed' "$test_log" | awk '{s += $1} END {print s + 0}')
rm -f "$test_log"

# Every #[ignore]d test must carry a TODO(issue#) marker on the same
# line, so disabled tests stay visibly tracked instead of rotting.
untracked=$(grep -rn '#\[ignore' crates/*/src crates/*/tests 2>/dev/null \
  | grep -v 'TODO(issue' || true)
if [ -n "$untracked" ]; then
  echo "ci: #[ignore]d test(s) without a TODO(issue#) marker:" >&2
  echo "$untracked" >&2
  exit 1
fi

cargo clippy --all-targets -- -D warnings

# First-party rustdoc must build clean (vendored stand-ins are exempt).
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p lyra -p lyra-core -p lyra-cluster -p lyra-sim -p lyra-trace \
  -p lyra-predictor -p lyra-elastic -p lyra-obs -p lyra-bench \
  -p lyra-oracle

# Bench smoke: one observed end-to-end run; exits non-zero unless the
# event log, metric snapshots, span profile and delay attribution all
# came out non-empty and the exported Chrome trace passes the
# trace_event schema check. The saved log then drives the attribution
# and export tooling end-to-end.
smoke_dir=$(mktemp -d)
./target/release/lyra-bench smoke --log "$smoke_dir/smoke.jsonl"
./target/release/lyra-bench events --filter job=0,kind=JobStart \
  --log "$smoke_dir/smoke.jsonl" >/dev/null
./target/release/lyra-bench attribute --top 5 --log "$smoke_dir/smoke.jsonl"
./target/release/lyra-bench attribute 0 --log "$smoke_dir/smoke.jsonl" >/dev/null
./target/release/lyra-bench export-trace --log "$smoke_dir/smoke.jsonl" \
  --out "$smoke_dir/smoke.trace.json"

# Provenance smoke: the decision-provenance tooling must run end to end
# — `why` for a job known to exist, the `blame` ranking from two fresh
# same-seed runs (must be byte-identical), the filter's cause taxonomy
# validation (unknown cause must exit 2 and list the alternatives), and
# the flow-annotated trace export.
./target/release/lyra-bench why 0 --log "$smoke_dir/smoke.jsonl" >/dev/null
./target/release/lyra-bench blame --top 5 >"$smoke_dir/blame-a.txt"
./target/release/lyra-bench blame --top 5 >"$smoke_dir/blame-b.txt"
cmp "$smoke_dir/blame-a.txt" "$smoke_dir/blame-b.txt" || {
  echo "ci: blame from two same-seed runs is not byte-identical" >&2
  exit 1
}
./target/release/lyra-bench export-provenance --log "$smoke_dir/smoke.jsonl" \
  --out "$smoke_dir/smoke.provenance.json"
status=0
./target/release/lyra-bench events --filter cause=no-such-cause \
  --log "$smoke_dir/smoke.jsonl" >/dev/null 2>"$smoke_dir/cause-err.txt" || status=$?
[ "$status" -eq 2 ] || {
  echo "ci: events --filter cause=no-such-cause exited $status, want 2" >&2
  exit 1
}
grep -q 'known causes' "$smoke_dir/cause-err.txt" || {
  echo "ci: unknown-cause error does not list the taxonomy" >&2
  exit 1
}
./target/release/lyra-bench events --filter cause=reclaim-preemption \
  --log "$smoke_dir/smoke.jsonl" >/dev/null

# Telemetry smoke: the sparkline dashboard must render from both a live
# run and a replayed log, and the Prometheus exposition must come out
# non-empty with the lyra_ namespace.
./target/release/lyra-bench timeline >/dev/null
./target/release/lyra-bench timeline --log "$smoke_dir/smoke.jsonl" >/dev/null
./target/release/lyra-bench prom --out "$smoke_dir/smoke.prom"
grep -q '^lyra_' "$smoke_dir/smoke.prom" || {
  echo "ci: Prometheus exposition is empty or unprefixed" >&2
  exit 1
}
rm -rf "$smoke_dir"

# Perf smoke: the incremental snapshot cache and the legacy from-scratch
# rebuild must stay observationally identical under the same seed, full
# observation (event log + telemetry sampling) must fit the telemetry
# overhead budget, and the decision-provenance tracker must cost at
# most 5 % (+ slack) over plain observation (no hot-path timing at CI
# scale; the full benchmark is `lyra-bench perf`). The overhead probes
# append to the history array in BENCH_scheduler.json.
./target/release/lyra-bench perf --smoke

# Golden-trace gate: the pinned scenarios must reproduce the committed
# JSONL logs byte-for-byte (each case runs twice, so nondeterminism
# fails here too). `lyra-bench golden --bless` regenerates them after
# an intended behavioural change.
./target/release/lyra-bench golden

# Mutation smoke: flip one scheduler constant (phase-2 MCKP DP → greedy
# ablation) and prove the golden gate AND a differential oracle both
# fire — the gate's own test.
./target/release/lyra-bench golden --mutate

# Ablation gate: the policy × scenario-zoo sweep must be a pure
# function of its seed — run the smoke sweep twice and require
# byte-identical output — and a typo'd policy name must exit 2 with a
# typed error, not a panic.
ablate_dir=$(mktemp -d)
./target/release/lyra-bench ablate --smoke --out "$ablate_dir/a.txt" >/dev/null
./target/release/lyra-bench ablate --smoke --out "$ablate_dir/b.txt" >/dev/null
cmp "$ablate_dir/a.txt" "$ablate_dir/b.txt" || {
  echo "ci: ablate --smoke is not deterministic" >&2
  exit 1
}
status=0
./target/release/lyra-bench ablate --policy no-such-policy \
  >/dev/null 2>"$ablate_dir/err.txt" || status=$?
[ "$status" -eq 2 ] || {
  echo "ci: ablate --policy no-such-policy exited $status, want 2" >&2
  exit 1
}
grep -q 'unknown policy' "$ablate_dir/err.txt" || {
  echo "ci: ablate unknown-policy error message missing" >&2
  exit 1
}
rm -rf "$ablate_dir"

# Crash-storm gate: kill the faulted golden scenario at 10 seeded
# epochs, checkpoint the crash-point state through the durable file
# format (torn sink tail included), restore, and require the resumed
# run's event log, attribution table, report and JSONL sink to be
# byte-identical to the uninterrupted run's. Also proves corrupted/
# truncated/version-bumped checkpoints are refused with typed errors.
storm_dir=$(mktemp -d)
./target/release/lyra-bench crash-storm --kills 10 --seed 1 --dir "$storm_dir"
rm -rf "$storm_dir"

echo "ci: all gates passed (${total_passed} tests)"
