#!/usr/bin/env sh
# Tier-1 gate: build, test, lint. Run from the repo root.
set -eu

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
