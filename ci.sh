#!/usr/bin/env sh
# Tier-1 gate: build, test, lint, docs, smoke. Run from the repo root.
set -eu

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings

# First-party rustdoc must build clean (vendored stand-ins are exempt).
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p lyra -p lyra-core -p lyra-cluster -p lyra-sim -p lyra-trace \
  -p lyra-predictor -p lyra-elastic -p lyra-obs -p lyra-bench

# Bench smoke: one observed end-to-end run; exits non-zero unless the
# event log, metric snapshots and span profile all came out non-empty.
./target/release/lyra-bench smoke

# Perf smoke: the incremental snapshot cache and the legacy from-scratch
# rebuild must stay observationally identical under the same seed (no
# timing at CI scale; the full benchmark is `lyra-bench perf`).
./target/release/lyra-bench perf --smoke
