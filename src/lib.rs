//! # lyra
//!
//! Umbrella crate of the Lyra reproduction (*Lyra: Elastic Scheduling for
//! Deep Learning Clusters*, EuroSys '23): re-exports every workspace
//! crate under one roof for examples, integration tests and downstream
//! users.
//!
//! * [`core`] — the paper's scheduling algorithms (reclaiming, two-phase
//!   allocation, MCKP, placement, policies).
//! * [`cluster`] — servers, whitelists, the resource-manager shim, the
//!   inference-side scheduler and the loan/reclaim orchestrator.
//! * [`sim`] — the discrete-event simulator and scenario definitions.
//! * [`trace`] — synthetic production traces and CSV I/O.
//! * [`predictor`] — the LSTM usage predictor and the running-time
//!   estimator.
//! * [`elastic`] — throughput profiles, batch adjustment, the elastic
//!   worker controller and the heterogeneous-training model.
//!
//! ```
//! use lyra::sim::{run_scenario, Scenario};
//! use lyra::trace::{InferenceTrace, InferenceTraceConfig, JobTrace, TraceConfig};
//! use lyra::cluster::state::ClusterConfig;
//! use lyra::core::gpu::SpeedFactors;
//!
//! let jobs = JobTrace::generate(TraceConfig {
//!     days: 1,
//!     training_gpus: 64,
//!     max_demand_gpus: 32,
//!     seed: 7,
//!     ..TraceConfig::default()
//! });
//! let inference = InferenceTrace::generate(InferenceTraceConfig {
//!     days: 2,
//!     total_gpus: 64,
//!     seed: 8,
//!     ..InferenceTraceConfig::default()
//! });
//! let mut scenario = Scenario::basic();
//! scenario.cluster = ClusterConfig {
//!     training_servers: 8,
//!     inference_servers: 8,
//!     gpus_per_server: 8,
//!     speed: SpeedFactors::default(),
//! };
//! let report = run_scenario(&scenario, &jobs, &inference).unwrap();
//! assert_eq!(report.completed, jobs.jobs.len());
//! ```

pub use lyra_cluster as cluster;
pub use lyra_core as core;
pub use lyra_elastic as elastic;
pub use lyra_predictor as predictor;
pub use lyra_sim as sim;
pub use lyra_trace as trace;
