//! Cross-crate integration tests: full simulations driven end-to-end
//! through trace generation, cluster management, scheduling policies and
//! metric collection.

use lyra::cluster::orchestrator::ReclaimPolicy;
use lyra::cluster::state::ClusterConfig;
use lyra::sim::{run_scenario, transform, Scenario};
use lyra::trace::{InferenceTrace, InferenceTraceConfig, JobTrace, TraceConfig};

fn traces(seed: u64, days: u32, servers: u32) -> (JobTrace, InferenceTrace) {
    let jobs = JobTrace::generate(TraceConfig {
        days,
        training_gpus: servers * 8,
        max_demand_gpus: (servers * 4).min(64),
        seed,
        ..TraceConfig::default()
    });
    let inference = InferenceTrace::generate(InferenceTraceConfig {
        days: days + 3,
        total_gpus: servers * 8,
        seed: seed ^ 0xF00,
        ..InferenceTraceConfig::default()
    });
    (jobs, inference)
}

fn cluster(servers: u32) -> ClusterConfig {
    ClusterConfig {
        training_servers: servers,
        inference_servers: servers,
        gpus_per_server: 8,
        speed: lyra::core::gpu::SpeedFactors::default(),
    }
}

#[test]
fn lyra_beats_baseline_on_queuing_and_jct() {
    let (jobs, inference) = traces(1, 2, 12);
    let mut baseline = Scenario::baseline();
    baseline.cluster = cluster(12);
    let mut lyra = Scenario::basic();
    lyra.cluster = cluster(12);
    let rb = run_scenario(&baseline, &jobs, &inference).unwrap();
    let rl = run_scenario(&lyra, &jobs, &inference).unwrap();
    assert_eq!(rb.completed, jobs.jobs.len());
    assert_eq!(rl.completed, jobs.jobs.len());
    assert!(
        rl.queuing.mean < rb.queuing.mean,
        "lyra queuing {:.0}s vs baseline {:.0}s",
        rl.queuing.mean,
        rb.queuing.mean
    );
    assert!(
        rl.jct.mean <= rb.jct.mean * 1.02,
        "lyra JCT {:.0}s vs baseline {:.0}s",
        rl.jct.mean,
        rb.jct.mean
    );
    assert!(
        rl.overall_usage > rb.overall_usage,
        "loaning lifts combined usage: {:.2} vs {:.2}",
        rl.overall_usage,
        rb.overall_usage
    );
}

#[test]
fn loaning_alone_reduces_queuing() {
    // Seed picked for a representative trace where loaned capacity is
    // actually exercised (a minority of seeds produce workloads too
    // light for loaning to matter either way).
    let (jobs, inference) = traces(5, 2, 12);
    let mut baseline = Scenario::baseline();
    baseline.cluster = cluster(12);
    let mut loan = Scenario::loaning_only(ReclaimPolicy::Lyra, "loan");
    loan.cluster = cluster(12);
    let rb = run_scenario(&baseline, &jobs, &inference).unwrap();
    let rl = run_scenario(&loan, &jobs, &inference).unwrap();
    assert!(
        rl.queuing.mean <= rb.queuing.mean,
        "loaning {:.0}s vs baseline {:.0}s",
        rl.queuing.mean,
        rb.queuing.mean
    );
    assert!(rl.loan_ops > 0, "servers were actually loaned");
    // Some jobs ran on loaned servers.
    assert!(rl.records.iter().any(|r| r.ran_on_loan));
}

#[test]
fn elastic_scaling_alone_reduces_jct() {
    let (jobs, inference) = traces(3, 2, 12);
    let mut baseline = Scenario::baseline();
    baseline.cluster = cluster(12);
    let mut scaling = Scenario::elastic_only("lyra", "scaling");
    scaling.cluster = cluster(12);
    let rb = run_scenario(&baseline, &jobs, &inference).unwrap();
    let rs = run_scenario(&scaling, &jobs, &inference).unwrap();
    assert!(rs.scaling_ops > 0, "elastic jobs actually scaled");
    assert!(
        rs.jct.mean < rb.jct.mean,
        "scaling JCT {:.0}s vs baseline {:.0}s",
        rs.jct.mean,
        rb.jct.mean
    );
}

#[test]
fn ideal_dominates_basic() {
    let (jobs, inference) = traces(4, 2, 12);
    let mut basic = Scenario::basic();
    basic.cluster = cluster(12);
    let rb = run_scenario(&basic, &jobs, &inference).unwrap();
    let mut ideal_jobs = jobs.clone();
    transform::idealize(&mut ideal_jobs);
    let mut ideal = Scenario::ideal();
    ideal.cluster = cluster(12);
    let ri = run_scenario(&ideal, &ideal_jobs, &inference).unwrap();
    assert!(
        ri.jct.mean <= rb.jct.mean * 1.05,
        "ideal JCT {:.0}s vs basic {:.0}s",
        ri.jct.mean,
        rb.jct.mean
    );
}

#[test]
fn checkpointing_reduces_preemption_pain() {
    let (jobs, inference) = traces(5, 2, 10);
    let mut with_ckpt_jobs = jobs.clone();
    transform::set_checkpoint_fraction(&mut with_ckpt_jobs, 1.0, 55);
    let mut scenario = Scenario::basic();
    scenario.cluster = cluster(10);
    let plain = run_scenario(&scenario, &jobs, &inference).unwrap();
    let ckpt = run_scenario(&scenario, &with_ckpt_jobs, &inference).unwrap();
    // With identical reclaim pressure, checkpointed jobs lose less work,
    // so tail JCT cannot get meaningfully worse.
    assert!(
        ckpt.jct.p95 <= plain.jct.p95 * 1.10,
        "checkpointing p95 JCT {:.0}s vs {:.0}s",
        ckpt.jct.p95,
        plain.jct.p95
    );
}

#[test]
fn reports_are_internally_consistent() {
    let (jobs, inference) = traces(6, 1, 10);
    let mut scenario = Scenario::basic();
    scenario.cluster = cluster(10);
    let r = run_scenario(&scenario, &jobs, &inference).unwrap();
    assert_eq!(r.submitted, jobs.jobs.len());
    assert_eq!(r.records.len(), r.submitted);
    assert!(r.completed <= r.submitted);
    for rec in &r.records {
        if let (Some(start), Some(done)) = (rec.first_start_s, rec.complete_s) {
            assert!(start >= rec.submit_s, "{:?}", rec.id);
            assert!(done >= start, "{:?}", rec.id);
            assert!(rec.queue_s >= 0.0);
            // Queue time is bounded by total sojourn time.
            assert!(
                rec.queue_s <= done - rec.submit_s + 1e-6,
                "{:?}: queue {} > sojourn {}",
                rec.id,
                rec.queue_s,
                done - rec.submit_s
            );
        }
    }
    assert!((0.0..=1.0).contains(&r.training_usage));
    assert!((0.0..=1.0).contains(&r.overall_usage));
    assert!((0.0..=1.0).contains(&r.on_loan_server_usage));
}

#[test]
fn hetero_scenario_uses_both_gpu_types_for_one_job() {
    // One hetero-capable elastic job bigger than the training pool must
    // span V100 and T4 servers.
    let (mut jobs, inference) = traces(7, 1, 6);
    transform::idealize(&mut jobs);
    let mut scenario = Scenario::ideal();
    scenario.cluster = cluster(6);
    let r = run_scenario(&scenario, &jobs, &inference).unwrap();
    assert_eq!(r.completed, jobs.jobs.len());
}

#[test]
fn estimation_error_degrades_gracefully() {
    let (jobs, inference) = traces(8, 2, 12);
    let mut perfect = Scenario::basic();
    perfect.cluster = cluster(12);
    let mut wrong = Scenario::basic();
    wrong.cluster = cluster(12);
    wrong.estimator.wrong_fraction = 0.6;
    let rp = run_scenario(&perfect, &jobs, &inference).unwrap();
    let rw = run_scenario(&wrong, &jobs, &inference).unwrap();
    assert_eq!(rw.completed, jobs.jobs.len());
    // Table 9: gains shrink but do not collapse.
    assert!(
        rw.jct.mean <= rp.jct.mean * 1.5,
        "60% wrong estimates: JCT {:.0}s vs {:.0}s",
        rw.jct.mean,
        rp.jct.mean
    );
}

#[test]
fn sim_is_deterministic_across_runs() {
    let (jobs, inference) = traces(9, 1, 8);
    let mut scenario = Scenario::basic();
    scenario.cluster = cluster(8);
    let a = run_scenario(&scenario, &jobs, &inference).unwrap();
    let b = run_scenario(&scenario, &jobs, &inference).unwrap();
    assert_eq!(a, b);
}
