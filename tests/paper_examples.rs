//! The paper's worked examples, verified end-to-end across crates: the
//! reclaiming example of Figure 5 / Table 1 driven through the real
//! cluster state and orchestrator, and the allocation examples of
//! Tables 2–4 / Figure 6 through the real policy.

use lyra::cluster::orchestrator::{Orchestrator, OrchestratorDecision, ReclaimPolicy};
use lyra::cluster::state::{ClusterConfig, ClusterState};
use lyra::core::policies::{JobScheduler, LyraScheduler};
use lyra::core::snapshot::{Action, PendingJobView, PoolKind, ServerGroup, ServerView, Snapshot};
use lyra::core::{GpuType, JobId, JobSpec};

/// Builds Figure 5's cluster inside a real `ClusterState`: six loaned
/// servers; jobs a and b on loan, plus two-server jobs whose remainders
/// sit on training servers.
fn figure5_state() -> (ClusterState, Vec<lyra::core::ServerId>) {
    let mut state = ClusterState::new(ClusterConfig {
        training_servers: 4,
        inference_servers: 8,
        gpus_per_server: 8,
        speed: lyra::core::gpu::SpeedFactors::default(),
    });
    let loaned = state.loan(6).expect("six idle inference servers");
    let g = ServerGroup::Base;
    // Job a spans loaned servers 0 and 1 (half each).
    state
        .allocate(JobId(0), &[(loaned[0], 1), (loaned[1], 1)], 4, g)
        .unwrap();
    // Job b fills loaned server 2.
    state.allocate(JobId(1), &[(loaned[2], 2)], 4, g).unwrap();
    // Job c: 80 % on loaned server 3, remainder on a training server.
    state
        .allocate(
            JobId(2),
            &[(loaned[3], 4), (lyra::core::ServerId(0), 1)],
            2,
            g,
        )
        .unwrap();
    // Jobs d and e: 20 % each on loaned server 4, remainders on training.
    state
        .allocate(
            JobId(3),
            &[(loaned[4], 1), (lyra::core::ServerId(1), 4)],
            2,
            g,
        )
        .unwrap();
    state
        .allocate(
            JobId(4),
            &[(loaned[4], 1), (lyra::core::ServerId(2), 4)],
            2,
            g,
        )
        .unwrap();
    // Job f: 80 % on loaned server 5, remainder on training.
    state
        .allocate(
            JobId(5),
            &[(loaned[5], 4), (lyra::core::ServerId(3), 1)],
            2,
            g,
        )
        .unwrap();
    (state, loaned)
}

#[test]
fn figure5_reclaim_through_the_orchestrator() {
    let (mut state, loaned) = figure5_state();
    let mut orchestrator = Orchestrator::new(ReclaimPolicy::Lyra, 1);
    let decision = orchestrator
        .execute_reclaim(&mut state, 2)
        .expect("reclaim");
    match decision {
        OrchestratorDecision::Reclaimed { outcome, .. } => {
            // The optimum: preempt job a alone, returning its server pair.
            assert_eq!(outcome.preempted, vec![JobId(0)]);
            let mut returned = outcome.returned.clone();
            returned.sort();
            assert_eq!(returned, vec![loaned[0], loaned[1]]);
        }
        other => panic!("unexpected decision {other:?}"),
    }
    assert_eq!(state.loaned_count(), 4);
}

#[test]
fn figure5_scf_preempts_more_jobs_sometimes() {
    // SCF cannot see job spans; on the Figure 5 instance it still finds a
    // 1-preemption answer only if its blind job-count ordering happens to
    // hit the spanning pair. Verify both policies meet the demand and
    // Lyra never does worse.
    let (mut s1, _) = figure5_state();
    let (mut s2, _) = figure5_state();
    let d1 = Orchestrator::new(ReclaimPolicy::Lyra, 1)
        .execute_reclaim(&mut s1, 2)
        .unwrap();
    let d2 = Orchestrator::new(ReclaimPolicy::Scf, 1)
        .execute_reclaim(&mut s2, 2)
        .unwrap();
    let preempted = |d: &OrchestratorDecision| match d {
        OrchestratorDecision::Reclaimed { outcome, .. } => outcome.preempted.len(),
        _ => usize::MAX,
    };
    assert!(preempted(&d1) <= preempted(&d2));
    assert_eq!(d1.servers_returned(), 2);
    assert_eq!(d2.servers_returned(), 2);
}

#[test]
fn table4_resolved_by_the_real_scheduler() {
    // Table 4: favouring the longer job A is JCT-optimal. The full Lyra
    // policy (allocation + placement) must give A its third worker.
    let a = JobSpec::elastic(0, 0.0, 2, 3, 2, 100.0);
    let b = JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0);
    let snapshot = Snapshot {
        time_s: 0.0,
        servers: vec![ServerView::idle(0, PoolKind::Training, GpuType::V100, 8)],
        pending: vec![PendingJobView::fresh(a), PendingJobView::fresh(b)],
        running: vec![],
    };
    let actions = LyraScheduler::default().schedule(&snapshot);
    let workers_of = |job: u64| -> u32 {
        actions
            .iter()
            .map(|action| match action {
                Action::Launch {
                    job: j, workers, ..
                } if j.0 == job => *workers,
                Action::ScaleOut { job: j, extra, .. } if j.0 == job => *extra,
                _ => 0,
            })
            .sum()
    };
    assert_eq!(workers_of(0), 3, "A runs at its maximum");
    assert_eq!(workers_of(1), 2, "B stays at base");
}

#[test]
fn table2_total_allocation_fills_the_cluster() {
    let a = JobSpec::elastic(0, 0.0, 2, 6, 1, 50.0);
    let b = JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0);
    let snapshot = Snapshot {
        time_s: 0.0,
        servers: vec![ServerView::idle(0, PoolKind::Training, GpuType::V100, 8)],
        pending: vec![PendingJobView::fresh(a), PendingJobView::fresh(b)],
        running: vec![],
    };
    let actions = LyraScheduler::default().schedule(&snapshot);
    let total: u32 = actions
        .iter()
        .map(|action| match action {
            Action::Launch { workers, .. } => *workers,
            Action::ScaleOut { extra, .. } => *extra,
            Action::ScaleIn { .. } => 0,
        })
        .sum();
    assert_eq!(total, 8, "all eight workers are allocated");
}
